// Package transport provides the message fabric Ring nodes and
// clients communicate over. It is the stand-in for the paper's RDMA
// verbs layer: a connectionless, message-oriented interface with two
// real implementations — an in-process channel fabric (memnet) used by
// tests, examples and live benchmarks, and a TCP fabric (tcpnet) used
// by the ringd/ringctl binaries.
//
// The abstraction is deliberately RDMA-send/receive-shaped: an
// Endpoint registers under an address and exchanges datagrams with
// other endpoints; there is no per-peer connection state visible to
// the user. All protocol structure (who talks to whom, how many hops,
// how many bytes) lives above this layer, which is what lets the
// discrete-event simulator (package sim) reproduce latency behaviour
// without any transport at all.
//
// # Payload ownership
//
// Send transfers ownership of the payload slice to the transport: the
// caller must not read or modify it after Send returns, whether or
// not Send reported an error. This lets memnet hand the very same
// slice to the receiver instead of copying it, the way an RDMA send
// posts a registered buffer rather than staging a copy. Symmetrically
// the receiver owns Recv's Packet.Payload outright and may recycle it
// once the packet is fully consumed. AcquireBuf/ReleaseBuf implement
// that recycling: senders encode into AcquireBuf buffers, receivers
// return fully-decoded payloads with ReleaseBuf, and the steady-state
// message path allocates nothing. Both are optional — any fresh slice
// may be sent, and unreleased payloads are simply garbage collected.
package transport

import (
	"errors"
	"sync"
	"time"
)

// bufPool recycles payload buffers between receivers (which release
// fully-decoded packets) and senders (which acquire encode buffers) —
// the stand-in for an RDMA registered-buffer pool.
var bufPool sync.Pool

// AcquireBuf returns an empty buffer to encode an outgoing payload
// into. Append to it, then pass the result to Send, which takes
// ownership.
//
//ring:hotpath
func AcquireBuf() []byte {
	if p, _ := bufPool.Get().(*[]byte); p != nil {
		return (*p)[:0]
	}
	return make([]byte, 0, 1024)
}

// ReleaseBuf recycles a payload buffer whose contents are no longer
// referenced anywhere — typically a Recv payload after every field of
// the decoded message has been copied out. Releasing a buffer that is
// still aliased corrupts later messages; when in doubt, don't release
// (the pool is purely an optimization).
//
//ring:hotpath
func ReleaseBuf(b []byte) {
	if cap(b) == 0 {
		return
	}
	bufPool.Put(&b)
}

// Packet is one datagram delivered through a fabric.
type Packet struct {
	From    string
	Payload []byte
}

// Endpoint is a registered participant able to send and receive.
type Endpoint interface {
	// Addr returns the address the endpoint registered under.
	Addr() string
	// Send transmits payload to the endpoint registered at `to`.
	// Delivery is best-effort: sends to dead or unknown endpoints
	// return an error or are dropped, like datagrams. Ownership of
	// payload transfers to the transport (see the package doc): the
	// caller must not touch the slice after Send returns.
	Send(to string, payload []byte) error
	// Recv blocks until a packet arrives or the endpoint closes. The
	// returned Packet.Payload is owned by the caller, who may hand it
	// to ReleaseBuf once fully decoded.
	Recv() (Packet, error)
	// Close unregisters the endpoint and unblocks Recv.
	Close() error
}

// Fabric creates endpoints.
type Fabric interface {
	// Register creates an endpoint under addr. Registering an address
	// twice is an error until the first endpoint closes.
	Register(addr string) (Endpoint, error)
}

// ChanReceiver is an optional Endpoint extension implemented by
// fabrics whose inbox is a Go channel. Event loops select on RecvChan
// directly instead of dedicating a forwarder goroutine to blocking
// Recv calls — one less goroutine handoff on every packet, which on
// the in-process fabric is a large share of per-message cost.
type ChanReceiver interface {
	// RecvChan returns the endpoint's inbox. A packet read from it is
	// owned by the reader exactly as if Recv had returned it. The
	// channel is never closed; Closed signals shutdown instead, after
	// which any packets still queued may be drained.
	RecvChan() <-chan Packet
	// Closed is closed when the endpoint closes.
	Closed() <-chan struct{}
}

// Errors shared by fabric implementations.
var (
	ErrClosed       = errors.New("transport: endpoint closed")
	ErrUnknownPeer  = errors.New("transport: unknown peer")
	ErrAddrInUse    = errors.New("transport: address already registered")
	ErrEmptyAddress = errors.New("transport: empty address")
)

// ---------------------------------------------------------------- memnet

// MemFabric is an in-process fabric backed by per-endpoint buffered
// channels. A Drop hook and per-endpoint partitions support failure
// injection in tests.
type MemFabric struct {
	mu    sync.Mutex
	peers map[string]*memEndpoint
	// faultFn, when set, is consulted for every send and may drop,
	// delay, or duplicate the packet (see FaultFunc).
	faultFn FaultFunc
	// queueLen is the per-endpoint inbox capacity.
	queueLen int
}

// NewMemFabric creates an in-process fabric. queueLen <= 0 selects a
// default inbox depth of 1024 packets.
func NewMemFabric(queueLen int) *MemFabric {
	if queueLen <= 0 {
		queueLen = 1024
	}
	return &MemFabric{peers: make(map[string]*memEndpoint), queueLen: queueLen}
}

// SetDropFunc installs a packet-drop predicate (nil disables). It is
// the boolean special case of SetFaultFunc, kept for the existing
// partition and message-loss tests.
func (f *MemFabric) SetDropFunc(fn func(from, to string) bool) {
	if fn == nil {
		f.SetFaultFunc(nil)
		return
	}
	f.SetFaultFunc(func(from, to string, _ int) FaultAction {
		return FaultAction{Drop: fn(from, to)}
	})
}

// SetFaultFunc implements FaultInjector (nil disables).
func (f *MemFabric) SetFaultFunc(fn FaultFunc) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.faultFn = fn
}

// Register implements Fabric.
func (f *MemFabric) Register(addr string) (Endpoint, error) {
	if addr == "" {
		return nil, ErrEmptyAddress
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, ok := f.peers[addr]; ok {
		return nil, ErrAddrInUse
	}
	ep := &memEndpoint{
		fabric: f,
		addr:   addr,
		inbox:  make(chan Packet, f.queueLen),
		done:   make(chan struct{}),
	}
	f.peers[addr] = ep
	return ep, nil
}

// Disconnect forcibly removes an endpoint, simulating a node crash:
// subsequent sends to it fail and its Recv unblocks with ErrClosed.
func (f *MemFabric) Disconnect(addr string) {
	f.mu.Lock()
	ep := f.peers[addr]
	f.mu.Unlock()
	if ep != nil {
		ep.Close()
	}
}

type memEndpoint struct {
	fabric *MemFabric
	addr   string
	inbox  chan Packet

	closeOnce sync.Once
	done      chan struct{}
}

func (e *memEndpoint) Addr() string { return e.addr }

// RecvChan and Closed implement ChanReceiver.
func (e *memEndpoint) RecvChan() <-chan Packet { return e.inbox }
func (e *memEndpoint) Closed() <-chan struct{} { return e.done }

// Send transfers payload ownership to the receiving endpoint's inbox.
//
//ring:hotpath
func (e *memEndpoint) Send(to string, payload []byte) error {
	f := e.fabric
	f.mu.Lock()
	fn := f.faultFn
	peer := f.peers[to]
	f.mu.Unlock()
	var act FaultAction
	if fn != nil {
		act = fn(e.addr, to, len(payload))
	}
	if act.Drop {
		Metrics.Drops.Inc()
		ReleaseBuf(payload) // silently lost, like a datagram
		return nil
	}
	if peer == nil {
		Metrics.SendErrors.Inc()
		ReleaseBuf(payload)
		return ErrUnknownPeer
	}
	if act.Duplicate {
		// The duplicate needs its own allocation: ownership of each
		// delivered payload transfers to the receiver independently.
		Metrics.Duplicates.Inc()
		dup := append([]byte(nil), payload...)
		e.deliver(peer, dup)
	}
	if act.Delay > 0 {
		Metrics.Delays.Inc()
		time.AfterFunc(act.Delay, func() { e.deliver(peer, payload) })
		return nil
	}
	return e.deliver(peer, payload)
}

// deliver enqueues payload into peer's inbox, transferring ownership.
//
//ring:hotpath
func (e *memEndpoint) deliver(peer *memEndpoint, payload []byte) error {
	countSend(payload)
	// No copy: Send transfers payload ownership (package doc), so the
	// receiver can be handed the sender's buffer directly.
	select {
	case peer.inbox <- Packet{From: e.addr, Payload: payload}:
		countRecv(payload, len(peer.inbox))
		return nil
	case <-peer.done:
		Metrics.SendErrors.Inc()
		ReleaseBuf(payload)
		return ErrUnknownPeer
	}
}

func (e *memEndpoint) Recv() (Packet, error) {
	select {
	case p := <-e.inbox:
		return p, nil
	case <-e.done:
		// Drain anything that raced with Close so shutdown is clean.
		select {
		case p := <-e.inbox:
			return p, nil
		default:
			return Packet{}, ErrClosed
		}
	}
}

func (e *memEndpoint) Close() error {
	e.closeOnce.Do(func() {
		f := e.fabric
		f.mu.Lock()
		if f.peers[e.addr] == e {
			delete(f.peers, e.addr)
		}
		f.mu.Unlock()
		close(e.done)
	})
	return nil
}
