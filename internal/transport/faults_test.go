package transport

import (
	"sync"
	"testing"
	"time"

	"ring/internal/testutil"
)

func memPair(t *testing.T) (*MemFabric, Endpoint, Endpoint) {
	t.Helper()
	f := NewMemFabric(16)
	a, err := f.Register("a")
	if err != nil {
		t.Fatal(err)
	}
	b, err := f.Register("b")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { a.Close(); b.Close() })
	return f, a, b
}

// recvCounter drains an endpoint in the background and counts packets.
type recvCounter struct {
	mu sync.Mutex
	n  int
}

func (rc *recvCounter) drain(e Endpoint) {
	for {
		if _, err := e.Recv(); err != nil {
			return
		}
		rc.mu.Lock()
		rc.n++
		rc.mu.Unlock()
	}
}

func (rc *recvCounter) count() int {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	return rc.n
}

func TestMemFaultDrop(t *testing.T) {
	f, a, b := memPair(t)
	var rc recvCounter
	go rc.drain(b)

	f.SetFaultFunc(func(from, to string, size int) FaultAction {
		return FaultAction{Drop: true}
	})
	if err := a.Send("b", []byte("lost")); err != nil {
		t.Fatal(err)
	}
	f.SetFaultFunc(nil)
	if err := a.Send("b", []byte("kept")); err != nil {
		t.Fatal(err)
	}
	if !testutil.Eventually(time.Second, time.Millisecond, func() bool { return rc.count() == 1 }) {
		t.Fatalf("want exactly 1 delivery, got %d", rc.count())
	}
}

func TestMemFaultDuplicate(t *testing.T) {
	f, a, b := memPair(t)
	var rc recvCounter
	go rc.drain(b)

	f.SetFaultFunc(func(from, to string, size int) FaultAction {
		return FaultAction{Duplicate: true}
	})
	if err := a.Send("b", []byte("twice")); err != nil {
		t.Fatal(err)
	}
	if !testutil.Eventually(time.Second, time.Millisecond, func() bool { return rc.count() == 2 }) {
		t.Fatalf("want 2 deliveries of a duplicated packet, got %d", rc.count())
	}
}

func TestMemFaultDelayReorders(t *testing.T) {
	f, a, b := memPair(t)

	// Delay only the first packet; the second must overtake it.
	first := true
	f.SetFaultFunc(func(from, to string, size int) FaultAction {
		if first {
			first = false
			return FaultAction{Delay: 20 * time.Millisecond}
		}
		return FaultAction{}
	})
	if err := a.Send("b", []byte("slow")); err != nil {
		t.Fatal(err)
	}
	if err := a.Send("b", []byte("fast")); err != nil {
		t.Fatal(err)
	}
	p1, err := b.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if string(p1.Payload) != "fast" {
		t.Fatalf("first delivery = %q, want the undelayed packet", p1.Payload)
	}
	p2, err := b.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if string(p2.Payload) != "slow" {
		t.Fatalf("second delivery = %q, want the delayed packet", p2.Payload)
	}
}

// TestMemDropFuncStillWorks pins the back-compat wrapper: the boolean
// predicate must behave exactly as before on top of the fault plane.
func TestMemDropFuncStillWorks(t *testing.T) {
	f, a, b := memPair(t)
	var rc recvCounter
	go rc.drain(b)

	f.SetDropFunc(func(from, to string) bool { return to == "b" })
	if err := a.Send("b", []byte("lost")); err != nil {
		t.Fatal(err)
	}
	f.SetDropFunc(nil)
	if err := a.Send("b", []byte("kept")); err != nil {
		t.Fatal(err)
	}
	if !testutil.Eventually(time.Second, time.Millisecond, func() bool { return rc.count() == 1 }) {
		t.Fatalf("want exactly 1 delivery, got %d", rc.count())
	}
}

func TestTCPFaultDropAndDuplicate(t *testing.T) {
	f := NewTCPFabric()
	a, err := f.Register("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := f.Register("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	var rc recvCounter
	go rc.drain(b)

	f.SetFaultFunc(func(from, to string, size int) FaultAction {
		return FaultAction{Drop: true}
	})
	if err := a.Send(BoundAddr(b), []byte("lost")); err != nil {
		t.Fatal(err)
	}
	f.SetFaultFunc(func(from, to string, size int) FaultAction {
		return FaultAction{Duplicate: true}
	})
	if err := a.Send(BoundAddr(b), []byte("twice")); err != nil {
		t.Fatal(err)
	}
	f.SetFaultFunc(nil)
	if !testutil.Eventually(2*time.Second, time.Millisecond, func() bool { return rc.count() == 2 }) {
		t.Fatalf("want 2 deliveries (drop swallowed, duplicate doubled), got %d", rc.count())
	}
}
