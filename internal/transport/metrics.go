package transport

import (
	"ring/internal/metrics"
	"ring/internal/proto"
)

// Metrics holds the process-wide transport instruments, registered in
// metrics.Default under "transport.*". They are process-scoped (all
// endpoints of all fabrics in this process share them) because that is
// what a /debug/ringvars scrape of one ringd can meaningfully report.
var Metrics struct {
	// PacketsSent / BytesSent count every payload accepted by Send;
	// BatchedSent is the subset carrying a TBatch of coalesced
	// messages, so the batching ratio of PR 1's send path is visible.
	PacketsSent metrics.Counter
	BytesSent   metrics.Counter
	BatchedSent metrics.Counter
	// Drops, Delays, and Duplicates count packets faulted on purpose
	// (SetFaultFunc / SetDropFunc injection); SendErrors counts sends
	// that failed (unknown peer, dead dial).
	Drops      metrics.Counter
	Delays     metrics.Counter
	Duplicates metrics.Counter
	SendErrors metrics.Counter
	// PacketsRecv / BytesRecv count packets surfaced to receivers.
	PacketsRecv metrics.Counter
	BytesRecv   metrics.Counter
	// InboxHighWater is the deepest any endpoint inbox has been.
	InboxHighWater metrics.MaxGauge
}

func init() {
	d := metrics.Default
	d.Register("transport.packets_sent", &Metrics.PacketsSent)
	d.Register("transport.bytes_sent", &Metrics.BytesSent)
	d.Register("transport.batched_sent", &Metrics.BatchedSent)
	d.Register("transport.drops", &Metrics.Drops)
	d.Register("transport.delays", &Metrics.Delays)
	d.Register("transport.duplicates", &Metrics.Duplicates)
	d.Register("transport.send_errors", &Metrics.SendErrors)
	d.Register("transport.packets_recv", &Metrics.PacketsRecv)
	d.Register("transport.bytes_recv", &Metrics.BytesRecv)
	d.Register("transport.inbox_high_water", &Metrics.InboxHighWater)
}

// countSend records one accepted outgoing payload.
func countSend(payload []byte) {
	Metrics.PacketsSent.Inc()
	Metrics.BytesSent.Add(uint64(len(payload)))
	if proto.IsBatch(payload) {
		Metrics.BatchedSent.Inc()
	}
}

// countRecv records one payload surfaced to a receiver, plus the inbox
// depth observed when it was enqueued.
func countRecv(payload []byte, inboxDepth int) {
	Metrics.PacketsRecv.Inc()
	Metrics.BytesRecv.Add(uint64(len(payload)))
	Metrics.InboxHighWater.Observe(int64(inboxDepth))
}
