package transport

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestMemFabricBasic(t *testing.T) {
	f := NewMemFabric(0)
	a, err := f.Register("a")
	if err != nil {
		t.Fatal(err)
	}
	b, err := f.Register("b")
	if err != nil {
		t.Fatal(err)
	}
	if a.Addr() != "a" {
		t.Fatalf("Addr = %q", a.Addr())
	}
	if err := a.Send("b", []byte("hello")); err != nil {
		t.Fatal(err)
	}
	p, err := b.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if p.From != "a" || string(p.Payload) != "hello" {
		t.Fatalf("got %+v", p)
	}
}

func TestMemFabricDuplicateRegister(t *testing.T) {
	f := NewMemFabric(0)
	if _, err := f.Register(""); err != ErrEmptyAddress {
		t.Fatalf("empty: %v", err)
	}
	if _, err := f.Register("x"); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Register("x"); err != ErrAddrInUse {
		t.Fatalf("dup: %v", err)
	}
}

func TestMemFabricUnknownPeer(t *testing.T) {
	f := NewMemFabric(0)
	a, _ := f.Register("a")
	if err := a.Send("ghost", []byte("x")); err != ErrUnknownPeer {
		t.Fatalf("want ErrUnknownPeer, got %v", err)
	}
}

func TestMemFabricCloseUnblocksRecv(t *testing.T) {
	f := NewMemFabric(0)
	a, _ := f.Register("a")
	errc := make(chan error, 1)
	go func() {
		_, err := a.Recv()
		errc <- err
	}()
	// No need to wait for Recv to block first: whether Close lands
	// before or after Recv parks, the contract is the same ErrClosed.
	a.Close()
	select {
	case err := <-errc:
		if err != ErrClosed {
			t.Fatalf("want ErrClosed, got %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Recv did not unblock")
	}
	// Address becomes reusable after close.
	if _, err := f.Register("a"); err != nil {
		t.Fatalf("re-register after close: %v", err)
	}
}

func TestMemFabricZeroCopyOwnership(t *testing.T) {
	f := NewMemFabric(0)
	a, _ := f.Register("a")
	b, _ := f.Register("b")
	buf := append(AcquireBuf(), "abc"...)
	a.Send("b", buf)
	p, _ := b.Recv()
	if string(p.Payload) != "abc" {
		t.Fatalf("payload = %q", p.Payload)
	}
	// Ownership transfer: memnet hands the receiver the sender's very
	// slice instead of a copy.
	if &p.Payload[0] != &buf[0] {
		t.Fatal("memnet copied the payload; Send should transfer ownership")
	}
	ReleaseBuf(p.Payload)
}

func TestBufPoolRecycles(t *testing.T) {
	b := append(AcquireBuf(), make([]byte, 512)...)
	ReleaseBuf(b)
	got := AcquireBuf()
	if len(got) != 0 {
		t.Fatalf("acquired buffer not empty: len %d", len(got))
	}
	// Not guaranteed by sync.Pool, but overwhelmingly likely in a
	// single-goroutine test; detects a Release that loses capacity.
	if cap(got) < 512 {
		t.Logf("pool did not recycle (cap %d); allowed but unexpected", cap(got))
	}
	ReleaseBuf(got)
	ReleaseBuf(nil) // zero-cap release must be a no-op
}

func TestMemFabricDropFunc(t *testing.T) {
	f := NewMemFabric(0)
	a, _ := f.Register("a")
	b, _ := f.Register("b")
	f.SetDropFunc(func(from, to string) bool { return to == "b" })
	if err := a.Send("b", []byte("lost")); err != nil {
		t.Fatalf("dropped send must not error: %v", err)
	}
	f.SetDropFunc(nil)
	a.Send("b", []byte("kept"))
	p, _ := b.Recv()
	if string(p.Payload) != "kept" {
		t.Fatalf("got %q, drop predicate leaked a packet", p.Payload)
	}
}

func TestMemFabricDisconnect(t *testing.T) {
	f := NewMemFabric(0)
	a, _ := f.Register("a")
	f.Register("b")
	f.Disconnect("b")
	if err := a.Send("b", []byte("x")); err != ErrUnknownPeer {
		t.Fatalf("send to disconnected: %v", err)
	}
}

func TestMemFabricConcurrentSenders(t *testing.T) {
	f := NewMemFabric(4096)
	dst, _ := f.Register("dst")
	const senders, per = 8, 100
	var wg sync.WaitGroup
	for s := 0; s < senders; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			ep, err := f.Register(fmt.Sprintf("s%d", s))
			if err != nil {
				t.Error(err)
				return
			}
			for i := 0; i < per; i++ {
				if err := ep.Send("dst", []byte{byte(s), byte(i)}); err != nil {
					t.Error(err)
					return
				}
			}
		}(s)
	}
	got := make(map[string]int)
	for i := 0; i < senders*per; i++ {
		p, err := dst.Recv()
		if err != nil {
			t.Fatal(err)
		}
		got[p.From]++
	}
	wg.Wait()
	for s := 0; s < senders; s++ {
		if got[fmt.Sprintf("s%d", s)] != per {
			t.Fatalf("sender %d delivered %d of %d", s, got[fmt.Sprintf("s%d", s)], per)
		}
	}
}

func TestTCPFabricRoundTrip(t *testing.T) {
	f := NewTCPFabric()
	f.Map("a", "127.0.0.1:0")
	f.Map("b", "127.0.0.1:0")
	a, err := f.Register("a")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := f.Register("b")
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	// Re-map logical names to the actually bound ports.
	f.Map("a", BoundAddr(a))
	f.Map("b", BoundAddr(b))

	if err := a.Send("b", []byte("over tcp")); err != nil {
		t.Fatal(err)
	}
	p, err := b.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if p.From != "a" || string(p.Payload) != "over tcp" {
		t.Fatalf("got %+v", p)
	}
	// Reply path exercises the reverse connection.
	if err := b.Send("a", []byte("pong")); err != nil {
		t.Fatal(err)
	}
	p, err = a.Recv()
	if err != nil || string(p.Payload) != "pong" {
		t.Fatalf("reply: %v %q", err, p.Payload)
	}
}

func TestTCPFabricLargeAndMany(t *testing.T) {
	f := NewTCPFabric()
	f.Map("a", "127.0.0.1:0")
	f.Map("b", "127.0.0.1:0")
	a, _ := f.Register("a")
	defer a.Close()
	b, _ := f.Register("b")
	defer b.Close()
	f.Map("a", BoundAddr(a))
	f.Map("b", BoundAddr(b))

	big := make([]byte, 1<<20)
	for i := range big {
		big[i] = byte(i)
	}
	for i := 0; i < 10; i++ {
		// Send transfers ownership, so each send gets its own copy.
		if err := a.Send("b", append(AcquireBuf(), big...)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 10; i++ {
		p, err := b.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(p.Payload, big) {
			t.Fatalf("frame %d corrupted", i)
		}
	}
}

func TestTCPFabricReplyRouting(t *testing.T) {
	// A peer with no dialable mapping (a client on an ephemeral port)
	// must still receive replies: the server routes them back over the
	// inbound connection.
	f := NewTCPFabric()
	f.Map("server", "127.0.0.1:0")
	srv, err := f.Register("server")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	f.Map("server", BoundAddr(srv))

	cf := NewTCPFabric()
	cf.Map("client/1", "127.0.0.1:0")
	cf.Map("server", BoundAddr(srv))
	cli, err := cf.Register("client/1")
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	if err := cli.Send("server", []byte("ping")); err != nil {
		t.Fatal(err)
	}
	p, err := srv.Recv()
	if err != nil || string(p.Payload) != "ping" {
		t.Fatalf("server recv: %v %q", err, p.Payload)
	}
	// Note: the server has no mapping for "client/1".
	if err := srv.Send(p.From, []byte("pong")); err != nil {
		t.Fatalf("reply over inbound connection: %v", err)
	}
	rp, err := cli.Recv()
	if err != nil || string(rp.Payload) != "pong" {
		t.Fatalf("client recv: %v %q", err, rp.Payload)
	}
}

func TestTCPFabricUnknownPeer(t *testing.T) {
	f := NewTCPFabric()
	f.Map("a", "127.0.0.1:0")
	a, _ := f.Register("a")
	defer a.Close()
	f.Map("dead", "127.0.0.1:1") // nothing listens there
	if err := a.Send("dead", []byte("x")); err == nil {
		t.Fatal("send to dead peer succeeded")
	}
}

func BenchmarkMemFabricRoundTrip(b *testing.B) {
	f := NewMemFabric(0)
	a, _ := f.Register("a")
	dst, _ := f.Register("b")
	go func() {
		for {
			p, err := dst.Recv()
			if err != nil {
				return
			}
			dst.Send(p.From, p.Payload)
		}
	}()
	var src [1024]byte
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf := append(AcquireBuf(), src[:]...)
		if err := a.Send("b", buf); err != nil {
			b.Fatal(err)
		}
		p, err := a.Recv()
		if err != nil {
			b.Fatal(err)
		}
		ReleaseBuf(p.Payload)
	}
	b.StopTimer()
	dst.Close()
}
