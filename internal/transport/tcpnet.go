package transport

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"strings"
	"sync"
	"time"
)

// TCPFabric implements the fabric over real TCP sockets. Each endpoint
// owns a listener; Send lazily dials and caches one outbound
// connection per peer. Frames are length-prefixed:
//
//	[4-byte big-endian frame length][frame]
//	frame = [2-byte sender-address length][sender address][payload]
//
// The sender address rides in every frame (rather than once per
// connection) to keep the framing stateless and trivially robust to
// reconnects.
//
// Send follows the package-level ownership contract: the payload is
// copied into the frame synchronously and recycled into the buffer
// pool before Send returns, so callers must hand over a buffer they
// will never touch again.
type TCPFabric struct {
	mu sync.Mutex
	// resolve maps logical addresses to TCP "host:port" when the two
	// differ (ringd uses logical node names over real sockets).
	resolve map[string]string
	// faultFn, when set, may drop, delay, or duplicate outgoing frames
	// (see FaultFunc). TCP itself never reorders or duplicates within a
	// connection; the hook models faults above the socket, where the
	// chaos harness injects them.
	faultFn FaultFunc
}

// NewTCPFabric creates a TCP-backed fabric. Logical addresses are used
// verbatim as TCP addresses unless remapped with Map.
func NewTCPFabric() *TCPFabric {
	return &TCPFabric{resolve: make(map[string]string)}
}

// SetFaultFunc implements FaultInjector (nil disables).
func (f *TCPFabric) SetFaultFunc(fn FaultFunc) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.faultFn = fn
}

func (f *TCPFabric) fault(from, to string, size int) FaultAction {
	f.mu.Lock()
	fn := f.faultFn
	f.mu.Unlock()
	if fn == nil {
		return FaultAction{}
	}
	return fn(from, to, size)
}

// Map binds a logical address to a concrete TCP address.
func (f *TCPFabric) Map(logical, tcpAddr string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.resolve[logical] = tcpAddr
}

func (f *TCPFabric) lookup(addr string) string {
	f.mu.Lock()
	defer f.mu.Unlock()
	if t, ok := f.resolve[addr]; ok {
		return t
	}
	return addr
}

// Register implements Fabric: it starts listening on the TCP address
// mapped from addr (or addr itself). A logical address with no mapping
// and no port (e.g. an ephemeral client name) binds to a loopback
// ephemeral port; peers reach it only by replying over its outbound
// connections.
func (f *TCPFabric) Register(addr string) (Endpoint, error) {
	if addr == "" {
		return nil, ErrEmptyAddress
	}
	tcpAddr := f.lookup(addr)
	if tcpAddr == addr && !strings.Contains(addr, ":") {
		tcpAddr = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", tcpAddr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", addr, err)
	}
	ep := &tcpEndpoint{
		fabric:     f,
		addr:       addr,
		ln:         ln,
		inbox:      make(chan Packet, 1024),
		conns:      make(map[string]net.Conn),
		replyConns: make(map[string]net.Conn),
		done:       make(chan struct{}),
	}
	go ep.acceptLoop()
	return ep, nil
}

// BoundAddr returns the concrete TCP address an endpoint is listening
// on (useful when registering with port 0).
func BoundAddr(e Endpoint) string {
	if t, ok := e.(*tcpEndpoint); ok {
		return t.ln.Addr().String()
	}
	return e.Addr()
}

type tcpEndpoint struct {
	fabric *TCPFabric
	addr   string
	ln     net.Listener
	inbox  chan Packet

	mu    sync.Mutex
	conns map[string]net.Conn
	// replyConns remembers the inbound connection a peer last spoke
	// on, so replies can be routed to peers with no dialable address
	// (clients behind arbitrary ports).
	replyConns map[string]net.Conn

	closeOnce sync.Once
	done      chan struct{}
}

func (e *tcpEndpoint) Addr() string { return e.addr }

func (e *tcpEndpoint) acceptLoop() {
	for {
		c, err := e.ln.Accept()
		if err != nil {
			return // listener closed
		}
		go e.readLoop(c)
	}
}

func (e *tcpEndpoint) readLoop(c net.Conn) {
	defer c.Close()
	r := bufio.NewReaderSize(c, 64<<10)
	for {
		from, payload, err := readFrame(r)
		if err != nil {
			return
		}
		e.mu.Lock()
		e.replyConns[from] = c
		e.mu.Unlock()
		select {
		case e.inbox <- Packet{From: from, Payload: payload}:
			countRecv(payload, len(e.inbox))
		case <-e.done:
			return
		}
	}
}

func readFrame(r io.Reader) (string, []byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return "", nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n < 2 || n > 64<<20 {
		return "", nil, fmt.Errorf("transport: bad frame length %d", n)
	}
	frame := make([]byte, n)
	if _, err := io.ReadFull(r, frame); err != nil {
		return "", nil, err
	}
	alen := int(binary.BigEndian.Uint16(frame[:2]))
	if 2+alen > len(frame) {
		return "", nil, fmt.Errorf("transport: bad address length %d", alen)
	}
	return string(frame[2 : 2+alen]), frame[2+alen:], nil
}

func writeFrame(c net.Conn, from string, payload []byte) error {
	buf := make([]byte, 4+2+len(from)+len(payload))
	binary.BigEndian.PutUint32(buf, uint32(2+len(from)+len(payload)))
	binary.BigEndian.PutUint16(buf[4:], uint16(len(from)))
	copy(buf[6:], from)
	copy(buf[6+len(from):], payload)
	_, err := c.Write(buf)
	return err
}

func (e *tcpEndpoint) Send(to string, payload []byte) error {
	switch act := e.fabric.fault(e.addr, to, len(payload)); {
	case act.Drop:
		Metrics.Drops.Inc()
		ReleaseBuf(payload)
		return nil
	case act.Duplicate || act.Delay > 0:
		if act.Duplicate {
			Metrics.Duplicates.Inc()
			dup := append([]byte(nil), payload...)
			e.transmit(to, dup)
		}
		if act.Delay > 0 {
			Metrics.Delays.Inc()
			time.AfterFunc(act.Delay, func() { e.transmit(to, payload) })
			return nil
		}
	}
	return e.transmit(to, payload)
}

// transmit performs the actual framed write (dialing on demand),
// bypassing fault injection.
func (e *tcpEndpoint) transmit(to string, payload []byte) error {
	e.mu.Lock()
	c := e.conns[to]
	if c == nil {
		// Fall back to the connection the peer last spoke on.
		c = e.replyConns[to]
	}
	e.mu.Unlock()
	if c == nil {
		nc, err := net.Dial("tcp", e.fabric.lookup(to))
		if err != nil {
			Metrics.SendErrors.Inc()
			return fmt.Errorf("%w: %s (%v)", ErrUnknownPeer, to, err)
		}
		e.mu.Lock()
		var lost net.Conn
		if old := e.conns[to]; old != nil {
			// Lost the race; keep the existing connection and close
			// ours below, outside the lock — Close can block on the
			// TCP stack and everything sending through this endpoint
			// serializes on e.mu.
			lost = nc
			c = old
		} else {
			e.conns[to] = nc
			c = nc
			// Connections are full duplex: the peer replies over the
			// same socket, so read from dialed connections too.
			go e.readLoop(nc)
		}
		e.mu.Unlock()
		if lost != nil {
			lost.Close()
		}
	}
	err := writeFrame(c, e.addr, payload)
	if err == nil {
		countSend(payload)
	} else {
		Metrics.SendErrors.Inc()
	}
	// The frame write staged its own copy; the caller's payload is
	// transport-owned now (package ownership contract) and can be
	// recycled either way.
	ReleaseBuf(payload)
	if err != nil {
		// Connection broke: forget it so the next send re-dials.
		e.mu.Lock()
		if e.conns[to] == c {
			delete(e.conns, to)
		}
		e.mu.Unlock()
		c.Close()
		return fmt.Errorf("%w: %s (%v)", ErrUnknownPeer, to, err)
	}
	return nil
}

func (e *tcpEndpoint) Recv() (Packet, error) {
	select {
	case p := <-e.inbox:
		return p, nil
	case <-e.done:
		select {
		case p := <-e.inbox:
			return p, nil
		default:
			return Packet{}, ErrClosed
		}
	}
}

func (e *tcpEndpoint) Close() error {
	e.closeOnce.Do(func() {
		close(e.done)
		e.ln.Close()
		// Snapshot under the lock, close outside it: a Close stuck in
		// the TCP stack must not wedge concurrent transmits (they all
		// take e.mu to look up a connection).
		e.mu.Lock()
		conns := make([]net.Conn, 0, len(e.conns))
		for _, c := range e.conns {
			conns = append(conns, c)
		}
		e.conns = map[string]net.Conn{}
		e.mu.Unlock()
		for _, c := range conns {
			c.Close()
		}
	})
	return nil
}
