package store

import (
	"bytes"
	"math/rand"
	"testing"

	"ring/internal/proto"
)

func TestKeyHashStable(t *testing.T) {
	if KeyHash("abc") != KeyHash("abc") {
		t.Fatal("hash not deterministic")
	}
	if KeyHash("abc") == KeyHash("abd") {
		t.Fatal("suspicious collision between near keys")
	}
}

func TestBlockHeapAllocWriteRead(t *testing.T) {
	h := NewBlockHeap(10, 3, 128)
	if h.Blocks() != 3 || h.BlockSize() != 128 || h.FirstBlock() != 10 {
		t.Fatal("geometry wrong")
	}
	ext, err := h.Alloc(16)
	if err != nil {
		t.Fatal(err)
	}
	if ext.Block != 10 || ext.Off != 0 || ext.Len != 16 {
		t.Fatalf("first alloc at %+v", ext)
	}
	val := []byte("0123456789abcdef")
	delta := h.Write(ext, val)
	// Fresh region was zero, so delta == val.
	if !bytes.Equal(delta, val) {
		t.Fatal("delta for fresh write must equal the value")
	}
	if !bytes.Equal(h.Read(ext), val) {
		t.Fatal("read back mismatch")
	}
	// Overwrite: delta = old ^ new.
	val2 := []byte("fedcba9876543210")
	delta2 := h.Write(ext, val2)
	for i := range delta2 {
		if delta2[i] != val[i]^val2[i] {
			t.Fatal("overwrite delta wrong")
		}
	}
	if h.UsedBytes() != 16 {
		t.Fatalf("used = %d", h.UsedBytes())
	}
}

func TestBlockHeapNoSpanning(t *testing.T) {
	h := NewBlockHeap(0, 2, 64)
	// Fill most of block 0.
	a, _ := h.Alloc(50)
	if a.Block != 0 {
		t.Fatal("expected block 0")
	}
	// 20 bytes no longer fit in block 0; must go to block 1.
	b, err := h.Alloc(20)
	if err != nil {
		t.Fatal(err)
	}
	if b.Block != 1 {
		t.Fatalf("allocation spanned into block %d", b.Block)
	}
	// Oversized allocations fail outright.
	if _, err := h.Alloc(65); err == nil {
		t.Fatal("alloc larger than block accepted")
	}
	if _, err := h.Alloc(0); err == nil {
		t.Fatal("zero alloc accepted")
	}
}

func TestBlockHeapFullAndFree(t *testing.T) {
	h := NewBlockHeap(0, 2, 32)
	var exts []Extent
	for {
		e, err := h.Alloc(32)
		if err != nil {
			break
		}
		exts = append(exts, e)
	}
	if len(exts) != 2 {
		t.Fatalf("allocated %d full blocks, want 2", len(exts))
	}
	if _, err := h.Alloc(1); err != ErrHeapFull {
		t.Fatalf("want ErrHeapFull, got %v", err)
	}
	h.Free(exts[0])
	if _, err := h.Alloc(32); err != nil {
		t.Fatalf("alloc after free: %v", err)
	}
}

func TestBlockHeapFreeCoalescing(t *testing.T) {
	h := NewBlockHeap(0, 1, 100)
	a, _ := h.Alloc(30)
	b, _ := h.Alloc(30)
	c, _ := h.Alloc(40)
	h.Free(a)
	h.Free(c)
	h.Free(b) // joins a and c: the whole block is free again
	if got, err := h.Alloc(100); err != nil || got.Off != 0 {
		t.Fatalf("coalescing failed: %+v %v", got, err)
	}
}

func TestBlockHeapDoubleFreePanics(t *testing.T) {
	h := NewBlockHeap(0, 1, 64)
	e, _ := h.Alloc(10)
	h.Free(e)
	defer func() {
		if recover() == nil {
			t.Fatal("double free did not panic")
		}
	}()
	h.Free(e)
}

func TestBlockHeapReuseDelta(t *testing.T) {
	// When a freed extent is reused, Write must produce old^new, which
	// keeps parity consistent for recycled space.
	h := NewBlockHeap(0, 1, 64)
	e, _ := h.Alloc(8)
	old := []byte("oldvalue")
	h.Write(e, old)
	h.Free(e)
	e2, _ := h.Alloc(8)
	if e2 != e {
		t.Fatalf("expected reuse of freed extent, got %+v", e2)
	}
	nw := []byte("newvalue")
	delta := h.Write(e2, nw)
	for i := range delta {
		if delta[i] != old[i]^nw[i] {
			t.Fatal("reuse delta must be old^new, not new")
		}
	}
}

func TestBlockHeapRandomizedAllocFree(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	h := NewBlockHeap(0, 4, 256)
	live := map[Extent][]byte{}
	for i := 0; i < 2000; i++ {
		if len(live) > 0 && rng.Intn(2) == 0 {
			for e, want := range live {
				if !bytes.Equal(h.Read(e), want) {
					t.Fatalf("iteration %d: extent %+v corrupted", i, e)
				}
				h.Free(e)
				delete(live, e)
				break
			}
			continue
		}
		n := 1 + rng.Intn(64)
		e, err := h.Alloc(n)
		if err != nil {
			continue
		}
		val := make([]byte, n)
		rng.Read(val)
		h.Write(e, val)
		live[e] = val
	}
	var want uint64
	for e := range live {
		want += uint64(e.Len)
	}
	if h.UsedBytes() != want {
		t.Fatalf("used accounting: %d != %d", h.UsedBytes(), want)
	}
	if h.FreeBytes() != 4*256-want {
		t.Fatalf("free accounting: %d", h.FreeBytes())
	}
}

func TestBlockData(t *testing.T) {
	h := NewBlockHeap(5, 2, 16)
	e, _ := h.Alloc(4)
	h.Write(e, []byte{1, 2, 3, 4})
	blk := h.BlockData(5)
	if !bytes.Equal(blk[:4], []byte{1, 2, 3, 4}) {
		t.Fatal("BlockData wrong")
	}
	h.SetBlockData(6, bytes.Repeat([]byte{9}, 16))
	if h.BlockData(6)[15] != 9 {
		t.Fatal("SetBlockData wrong")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range block access did not panic")
		}
	}()
	h.BlockData(7)
}

func TestParityRegion(t *testing.T) {
	p := NewParityRegion(3, 32)
	if p.Stripes() != 3 || p.BlockSize() != 32 {
		t.Fatal("geometry")
	}
	p.ApplyDelta(1, 4, []byte{0xff, 0x0f})
	if p.Block(1)[4] != 0xff || p.Block(1)[5] != 0x0f {
		t.Fatal("delta not applied")
	}
	p.ApplyDelta(1, 4, []byte{0xff, 0x0f})
	if p.Block(1)[4] != 0 || p.Block(1)[5] != 0 {
		t.Fatal("XOR twice must cancel")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("overflow delta did not panic")
		}
	}()
	p.ApplyDelta(0, 31, []byte{1, 2})
}

func rec(key string, v proto.Version, mg proto.MemgestID, committed bool) proto.MetaRecord {
	return proto.MetaRecord{Key: key, Version: v, Memgest: mg, Committed: committed}
}

func TestMetaTable(t *testing.T) {
	mt := NewMetaTable()
	mt.Put(&Entry{Rec: rec("a", 1, 1, false)})
	mt.Put(&Entry{Rec: rec("a", 2, 1, true)})
	mt.Put(&Entry{Rec: rec("b", 1, 1, true)})
	if mt.Len() != 3 {
		t.Fatalf("Len = %d", mt.Len())
	}
	if e := mt.Get("a", 2); e == nil || !e.Rec.Committed {
		t.Fatal("Get(a,2) wrong")
	}
	if mt.Get("a", 3) != nil {
		t.Fatal("Get of absent version")
	}
	// Replace must not double-count size.
	before := mt.SizeBytes()
	mt.Put(&Entry{Rec: rec("a", 2, 1, true)})
	if mt.SizeBytes() != before {
		t.Fatal("replace changed size accounting")
	}
	recs := mt.Records()
	if len(recs) != 3 || recs[0].Key != "a" || recs[0].Version != 1 || recs[2].Key != "b" {
		t.Fatalf("Records order: %+v", recs)
	}
	if mt.Delete("a", 1) == nil || mt.Len() != 2 {
		t.Fatal("Delete failed")
	}
	if mt.Delete("a", 1) != nil {
		t.Fatal("second Delete returned entry")
	}
	n := 0
	mt.Range(func(*Entry) bool { n++; return true })
	if n != 2 {
		t.Fatalf("Range visited %d", n)
	}
	n = 0
	mt.Range(func(*Entry) bool { n++; return false })
	if n != 1 {
		t.Fatal("Range early stop failed")
	}
}

func TestMetaTableSizeGrows(t *testing.T) {
	mt := NewMetaTable()
	var last uint64
	for i := 0; i < 100; i++ {
		mt.Put(&Entry{Rec: rec(string(rune('a'+i%26))+string(rune('0'+i/26)), proto.Version(i), 1, true)})
		if mt.SizeBytes() <= last {
			t.Fatal("size must grow monotonically with inserts")
		}
		last = mt.SizeBytes()
	}
}

func TestVolatileIndex(t *testing.T) {
	v := NewVolatileIndex()
	if _, ok := v.Highest("k"); ok {
		t.Fatal("empty index returned a version")
	}
	v.Add("k", 1, 10)
	v.Add("k", 3, 11)
	v.Add("k", 2, 10)
	hi, ok := v.Highest("k")
	if !ok || hi.Version != 3 || hi.Memgest != 11 {
		t.Fatalf("Highest = %+v", hi)
	}
	all := v.All("k")
	if len(all) != 3 || all[0].Version != 3 || all[2].Version != 1 {
		t.Fatalf("All = %+v", all)
	}
	older := v.Older("k", 3)
	if len(older) != 2 || older[0].Version != 2 {
		t.Fatalf("Older = %+v", older)
	}
	if len(v.Older("k", 1)) != 0 {
		t.Fatal("Older(1) must be empty")
	}
	// Duplicate version replaces memgest (a move in flight).
	v.Add("k", 3, 12)
	hi, _ = v.Highest("k")
	if hi.Memgest != 12 {
		t.Fatal("duplicate Add did not replace memgest")
	}
	if len(v.All("k")) != 3 {
		t.Fatal("duplicate Add grew the list")
	}
	v.Remove("k", 3)
	hi, _ = v.Highest("k")
	if hi.Version != 2 {
		t.Fatalf("after Remove: %+v", hi)
	}
	v.Remove("k", 99) // no-op
	v.Remove("k", 2)
	v.Remove("k", 1)
	if _, ok := v.Highest("k"); ok {
		t.Fatal("key should be gone")
	}
	if v.Keys() != 0 {
		t.Fatal("Keys != 0")
	}
}

func TestVolatileIndexRebuild(t *testing.T) {
	t1 := NewMetaTable()
	t1.Put(&Entry{Rec: rec("a", 1, 1, true)})
	t1.Put(&Entry{Rec: rec("b", 5, 1, true)})
	t2 := NewMetaTable()
	t2.Put(&Entry{Rec: rec("a", 2, 2, false)})

	v := NewVolatileIndex()
	v.Add("stale", 9, 9)
	v.RebuildFrom(map[proto.MemgestID]*MetaTable{1: t1, 2: t2})
	if _, ok := v.Highest("stale"); ok {
		t.Fatal("rebuild did not clear stale entries")
	}
	hi, ok := v.Highest("a")
	if !ok || hi.Version != 2 || hi.Memgest != 2 {
		t.Fatalf("rebuild Highest(a) = %+v", hi)
	}
	if hi, _ := v.Highest("b"); hi.Memgest != 1 {
		t.Fatal("rebuild lost b")
	}
	if v.Keys() != 2 {
		t.Fatalf("Keys = %d", v.Keys())
	}
}

func BenchmarkHeapAllocFree(b *testing.B) {
	h := NewBlockHeap(0, 64, 64*1024)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e, err := h.Alloc(1024)
		if err != nil {
			b.Fatal(err)
		}
		h.Free(e)
	}
}

func BenchmarkVolatileIndexAdd(b *testing.B) {
	v := NewVolatileIndex()
	for i := 0; i < b.N; i++ {
		v.Add("key", proto.Version(i), 1)
		if i%4 == 3 {
			v.Remove("key", proto.Version(i-3))
		}
	}
}
