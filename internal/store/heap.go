// Package store implements the node-local storage of a Ring server:
// the block-structured data heap whose geometry feeds the SRS stripe
// math, the per-memgest metadata hashtables, and the volatile
// hashtable that maps each key to its versions across memgests
// (Section 5.1 of the paper).
package store

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
)

// KeyHash returns the 64-bit FNV-1a hash used for key-to-shard
// mapping: shard = KeyHash(key) mod s.
func KeyHash(key string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(key))
	return h.Sum64()
}

// Extent locates a value inside the block heap: global logical block
// index, byte offset within the block, and length. Extents never span
// logical blocks so that every byte of a value shares one stripe
// position and one parity offset.
type Extent struct {
	Block uint32
	Off   uint32
	Len   uint32
}

// ErrHeapFull is returned when no block has room for an allocation.
var ErrHeapFull = errors.New("store: heap full")

// freeRun is a free byte range within one block.
type freeRun struct {
	off, n uint32
}

// BlockHeap is the primary-data region a coordinator owns for one SRS
// memgest: a contiguous run of logical blocks, each of fixed capacity.
// Allocation is first-fit within a block with coalescing frees; values
// never span blocks.
type BlockHeap struct {
	firstBlock uint32
	blockSize  uint32
	blocks     [][]byte
	free       [][]freeRun // free[i]: sorted disjoint free runs of block i
	used       uint64
}

// NewBlockHeap creates a heap of nblocks logical blocks, each of
// blockSize bytes, whose global indices start at firstBlock.
func NewBlockHeap(firstBlock, nblocks, blockSize int) *BlockHeap {
	if nblocks <= 0 || blockSize <= 0 {
		panic(fmt.Sprintf("store: invalid heap geometry %d x %d", nblocks, blockSize))
	}
	h := &BlockHeap{
		firstBlock: uint32(firstBlock),
		blockSize:  uint32(blockSize),
		blocks:     make([][]byte, nblocks),
		free:       make([][]freeRun, nblocks),
	}
	for i := range h.blocks {
		h.blocks[i] = make([]byte, blockSize)
		h.free[i] = []freeRun{{0, uint32(blockSize)}}
	}
	return h
}

// BlockSize returns the per-block capacity.
func (h *BlockHeap) BlockSize() int { return int(h.blockSize) }

// Blocks returns the number of logical blocks.
func (h *BlockHeap) Blocks() int { return len(h.blocks) }

// FirstBlock returns the global index of the heap's first block.
func (h *BlockHeap) FirstBlock() uint32 { return h.firstBlock }

// UsedBytes returns the number of currently allocated bytes.
func (h *BlockHeap) UsedBytes() uint64 { return h.used }

// Alloc reserves n bytes inside a single block (first fit) and returns
// the extent. It fails with ErrHeapFull when no block has a large
// enough free run, and rejects n larger than a block or zero.
func (h *BlockHeap) Alloc(n int) (Extent, error) {
	if n <= 0 {
		return Extent{}, fmt.Errorf("store: invalid allocation size %d", n)
	}
	if uint32(n) > h.blockSize {
		return Extent{}, fmt.Errorf("store: allocation %d exceeds block size %d", n, h.blockSize)
	}
	for b := range h.free {
		for i, run := range h.free[b] {
			if run.n < uint32(n) {
				continue
			}
			ext := Extent{Block: h.firstBlock + uint32(b), Off: run.off, Len: uint32(n)}
			if run.n == uint32(n) {
				h.free[b] = append(h.free[b][:i], h.free[b][i+1:]...)
			} else {
				h.free[b][i] = freeRun{run.off + uint32(n), run.n - uint32(n)}
			}
			h.used += uint64(n)
			return ext, nil
		}
	}
	return Extent{}, ErrHeapFull
}

// Free returns an extent to the free list, coalescing with adjacent
// runs. Double frees and out-of-range extents panic: they indicate
// metadata corruption, which must not be masked.
func (h *BlockHeap) Free(ext Extent) {
	b := h.localBlock(ext)
	runs := h.free[b]
	i := sort.Search(len(runs), func(i int) bool { return runs[i].off >= ext.Off })
	// Overlap checks against neighbours.
	if i > 0 && runs[i-1].off+runs[i-1].n > ext.Off {
		panic(fmt.Sprintf("store: double free or overlap at %+v", ext))
	}
	if i < len(runs) && ext.Off+ext.Len > runs[i].off {
		panic(fmt.Sprintf("store: double free or overlap at %+v", ext))
	}
	run := freeRun{ext.Off, ext.Len}
	// Coalesce with predecessor and successor.
	if i > 0 && runs[i-1].off+runs[i-1].n == run.off {
		run = freeRun{runs[i-1].off, runs[i-1].n + run.n}
		runs = append(runs[:i-1], runs[i:]...)
		i--
	}
	if i < len(runs) && run.off+run.n == runs[i].off {
		run.n += runs[i].n
		runs = append(runs[:i], runs[i+1:]...)
	}
	runs = append(runs, freeRun{})
	copy(runs[i+1:], runs[i:])
	runs[i] = run
	h.free[b] = runs
	h.used -= uint64(ext.Len)
}

// Reserve carves a specific extent out of the free space, used when a
// recovering coordinator reinstalls metadata whose extents were
// assigned by its predecessor. It fails if any byte of the extent is
// already allocated.
func (h *BlockHeap) Reserve(ext Extent) error {
	if ext.Len == 0 {
		return nil
	}
	b := h.localBlock(ext)
	runs := h.free[b]
	for i, run := range runs {
		if run.off > ext.Off || run.off+run.n < ext.Off+ext.Len {
			continue
		}
		// Split the run around the reservation.
		var repl []freeRun
		if run.off < ext.Off {
			repl = append(repl, freeRun{run.off, ext.Off - run.off})
		}
		if end := ext.Off + ext.Len; end < run.off+run.n {
			repl = append(repl, freeRun{end, run.off + run.n - end})
		}
		h.free[b] = append(runs[:i:i], append(repl, runs[i+1:]...)...)
		h.used += uint64(ext.Len)
		return nil
	}
	return fmt.Errorf("store: extent %+v overlaps an allocation", ext)
}

func (h *BlockHeap) localBlock(ext Extent) int {
	b := int(ext.Block) - int(h.firstBlock)
	if b < 0 || b >= len(h.blocks) {
		panic(fmt.Sprintf("store: extent block %d outside heap [%d,%d)", ext.Block, h.firstBlock, int(h.firstBlock)+len(h.blocks)))
	}
	if ext.Off+ext.Len > h.blockSize {
		panic(fmt.Sprintf("store: extent %+v exceeds block size %d", ext, h.blockSize))
	}
	return b
}

// Read returns a copy of the bytes at ext.
func (h *BlockHeap) Read(ext Extent) []byte {
	b := h.localBlock(ext)
	out := make([]byte, ext.Len)
	copy(out, h.blocks[b][ext.Off:ext.Off+ext.Len])
	return out
}

// ReadInPlace returns the live bytes at ext without copying; callers
// must not retain the slice across mutations.
func (h *BlockHeap) ReadInPlace(ext Extent) []byte {
	b := h.localBlock(ext)
	return h.blocks[b][ext.Off : ext.Off+ext.Len]
}

// Write stores val at ext and returns the delta (old XOR new) that
// parity nodes must apply, per the paper's update rule. The returned
// slice is freshly allocated.
func (h *BlockHeap) Write(ext Extent, val []byte) (delta []byte) {
	if uint32(len(val)) != ext.Len {
		panic(fmt.Sprintf("store: write of %d bytes into extent of %d", len(val), ext.Len))
	}
	b := h.localBlock(ext)
	dst := h.blocks[b][ext.Off : ext.Off+ext.Len]
	delta = make([]byte, len(val))
	for i := range val {
		delta[i] = dst[i] ^ val[i]
		dst[i] = val[i]
	}
	return delta
}

// BlockData returns the raw contents of global logical block idx; used
// when a parity node fetches stripe blocks for decoding.
func (h *BlockHeap) BlockData(idx uint32) []byte {
	return h.blocks[h.localBlock(Extent{Block: idx})]
}

// SetBlockData overwrites a whole logical block (recovery install).
func (h *BlockHeap) SetBlockData(idx uint32, data []byte) {
	b := h.localBlock(Extent{Block: idx})
	if len(data) != int(h.blockSize) {
		panic(fmt.Sprintf("store: block install of %d bytes, want %d", len(data), h.blockSize))
	}
	copy(h.blocks[b], data)
}

// FreeBytes returns the total free capacity, for balance accounting.
func (h *BlockHeap) FreeBytes() uint64 {
	return uint64(len(h.blocks))*uint64(h.blockSize) - h.used
}

// ParityRegion is the storage of one parity node for one SRS memgest:
// one parity block per stripe offset, updated by XORing in
// coefficient-multiplied deltas.
type ParityRegion struct {
	blockSize uint32
	blocks    [][]byte
}

// NewParityRegion allocates stripes parity blocks of blockSize bytes.
func NewParityRegion(stripes, blockSize int) *ParityRegion {
	if stripes <= 0 || blockSize <= 0 {
		panic(fmt.Sprintf("store: invalid parity geometry %d x %d", stripes, blockSize))
	}
	p := &ParityRegion{blockSize: uint32(blockSize), blocks: make([][]byte, stripes)}
	for i := range p.blocks {
		p.blocks[i] = make([]byte, blockSize)
	}
	return p
}

// ApplyDelta XORs delta into parity block t at byte offset off.
func (p *ParityRegion) ApplyDelta(t, off int, delta []byte) {
	if t < 0 || t >= len(p.blocks) {
		panic(fmt.Sprintf("store: parity block %d out of range [0,%d)", t, len(p.blocks)))
	}
	if off < 0 || off+len(delta) > int(p.blockSize) {
		panic(fmt.Sprintf("store: parity delta [%d,%d) exceeds block size %d", off, off+len(delta), p.blockSize))
	}
	dst := p.blocks[t][off : off+len(delta)]
	for i := range delta {
		dst[i] ^= delta[i]
	}
}

// Block returns the live contents of parity block t.
func (p *ParityRegion) Block(t int) []byte {
	if t < 0 || t >= len(p.blocks) {
		panic(fmt.Sprintf("store: parity block %d out of range", t))
	}
	return p.blocks[t]
}

// Stripes returns the number of parity blocks.
func (p *ParityRegion) Stripes() int { return len(p.blocks) }

// BlockSize returns the per-block capacity.
func (p *ParityRegion) BlockSize() int { return int(p.blockSize) }
