package store

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"ring/internal/proto"
)

// TestVolatileIndexAgainstModel drives random Add/Remove sequences and
// compares every query against a straightforward map-of-slices model.
func TestVolatileIndexAgainstModel(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		idx := NewVolatileIndex()
		model := make(map[string]map[proto.Version]proto.MemgestID)
		keys := []string{"a", "b", "c"}
		for op := 0; op < 300; op++ {
			key := keys[rng.Intn(len(keys))]
			ver := proto.Version(rng.Intn(20))
			switch rng.Intn(3) {
			case 0, 1:
				mg := proto.MemgestID(rng.Intn(5))
				idx.Add(key, ver, mg)
				if model[key] == nil {
					model[key] = make(map[proto.Version]proto.MemgestID)
				}
				model[key][ver] = mg
			case 2:
				idx.Remove(key, ver)
				delete(model[key], ver)
			}
			// Compare Highest and All for every key.
			for _, k := range keys {
				var vers []proto.Version
				for v := range model[k] {
					vers = append(vers, v)
				}
				sort.Slice(vers, func(i, j int) bool { return vers[i] > vers[j] })
				got := idx.All(k)
				if len(got) != len(vers) {
					return false
				}
				for i, v := range vers {
					if got[i].Version != v || got[i].Memgest != model[k][v] {
						return false
					}
				}
				hi, ok := idx.Highest(k)
				if ok != (len(vers) > 0) {
					return false
				}
				if ok && hi.Version != vers[0] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestBlockHeapConservation: allocated + free bytes always equals the
// heap capacity under random workloads, and Reserve round-trips with
// Free.
func TestBlockHeapConservation(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		h := NewBlockHeap(0, 3, 128)
		capacity := uint64(3 * 128)
		var live []Extent
		for op := 0; op < 200; op++ {
			if h.UsedBytes()+h.FreeBytes() != capacity {
				return false
			}
			if len(live) > 0 && rng.Intn(2) == 0 {
				i := rng.Intn(len(live))
				h.Free(live[i])
				live = append(live[:i], live[i+1:]...)
				continue
			}
			e, err := h.Alloc(1 + rng.Intn(40))
			if err != nil {
				continue
			}
			live = append(live, e)
		}
		// Reserve what we free, then free it again.
		if len(live) > 0 {
			e := live[0]
			h.Free(e)
			if err := h.Reserve(e); err != nil {
				return false
			}
			h.Free(e)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestReserve(t *testing.T) {
	h := NewBlockHeap(0, 1, 100)
	if err := h.Reserve(Extent{Block: 0, Off: 20, Len: 30}); err != nil {
		t.Fatal(err)
	}
	if h.UsedBytes() != 30 {
		t.Fatalf("used = %d", h.UsedBytes())
	}
	// Overlapping reservation fails.
	if err := h.Reserve(Extent{Block: 0, Off: 25, Len: 10}); err == nil {
		t.Fatal("overlapping reserve accepted")
	}
	// The surrounding space is still allocatable.
	a, err := h.Alloc(20)
	if err != nil || a.Off != 0 {
		t.Fatalf("front alloc: %+v %v", a, err)
	}
	b, err := h.Alloc(50)
	if err != nil || b.Off != 50 {
		t.Fatalf("tail alloc: %+v %v", b, err)
	}
	// Zero-length reserve is a no-op.
	if err := h.Reserve(Extent{}); err != nil {
		t.Fatal(err)
	}
}
