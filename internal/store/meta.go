package store

import (
	"sort"

	"ring/internal/proto"
)

// EntryKey addresses one version of one key inside a memgest's
// metadata hashtable.
type EntryKey struct {
	Key     string
	Version proto.Version
}

// Entry is one metadata hashtable record:
//
//	key,version -> data, length, committed, requests
//
// The committed flag and parked requests are the volatile part of the
// paper's scheme; Rec carries everything that is replicated.
type Entry struct {
	Rec proto.MetaRecord
	// Value holds the bytes for replicated memgests (where redundancy
	// nodes store full copies). For SRS memgests the primary bytes
	// live in the coordinator's BlockHeap at Ext and Value is nil.
	Value []byte
	// Ext locates the bytes in the block heap (SRS memgests only).
	Ext Extent
	// Seq is the replicated-log sequence that carried this entry.
	Seq proto.Seq
	// ParkedGets are get requests waiting for this entry to commit
	// (client address + request id), per Figure 5 of the paper.
	ParkedGets []Waiter
	// ParkedMoves are move requests waiting for durability.
	ParkedMoves []MoveWaiter
}

// Waiter identifies a parked get reply.
type Waiter struct {
	Client string
	Req    proto.ReqID
}

// MoveWaiter identifies a parked move (or, with Convert set, a parked
// scheme transition — released through the journaled convert path
// instead of the plain move path).
type MoveWaiter struct {
	Client  string
	Req     proto.ReqID
	Dst     proto.MemgestID
	Convert bool
}

// MetaTable is the metadata hashtable of one memgest shard. The
// coordinator's copy is authoritative; replicas and parity nodes hold
// replicas maintained through the replicated log.
type MetaTable struct {
	entries map[EntryKey]*Entry
	bytes   uint64 // approximate serialized size, for recovery sizing
}

// NewMetaTable creates an empty table.
func NewMetaTable() *MetaTable {
	return &MetaTable{entries: make(map[EntryKey]*Entry)}
}

// recSize approximates the wire size of a metadata record.
func recSize(rec *proto.MetaRecord) uint64 {
	return uint64(len(rec.Key)) + 26
}

// Put inserts or replaces an entry (write-ahead: entries are inserted
// before they are committed).
func (t *MetaTable) Put(e *Entry) {
	k := EntryKey{e.Rec.Key, e.Rec.Version}
	if old, ok := t.entries[k]; ok {
		t.bytes -= recSize(&old.Rec)
	}
	t.entries[k] = e
	t.bytes += recSize(&e.Rec)
}

// Get returns the entry for (key, version), or nil.
func (t *MetaTable) Get(key string, v proto.Version) *Entry {
	return t.entries[EntryKey{key, v}]
}

// Delete removes (key, version) and returns the removed entry, if any.
func (t *MetaTable) Delete(key string, v proto.Version) *Entry {
	k := EntryKey{key, v}
	e, ok := t.entries[k]
	if !ok {
		return nil
	}
	delete(t.entries, k)
	t.bytes -= recSize(&e.Rec)
	return e
}

// Len returns the number of entries.
func (t *MetaTable) Len() int { return len(t.entries) }

// SizeBytes returns the approximate serialized size of the table; this
// is the "metadata size" axis of the recovery experiment (Figure 12).
func (t *MetaTable) SizeBytes() uint64 { return t.bytes }

// Records serializes every entry's replicated part, sorted by key then
// version for deterministic wire contents.
func (t *MetaTable) Records() []proto.MetaRecord {
	out := make([]proto.MetaRecord, 0, len(t.entries))
	for _, e := range t.entries {
		out = append(out, e.Rec)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Key != out[j].Key {
			return out[i].Key < out[j].Key
		}
		return out[i].Version < out[j].Version
	})
	return out
}

// RecordsSince serializes the replicated part of every entry carried
// by a log sequence after since, sorted by key then version. Entries
// with Seq == 0 (installed by recovery, original sequence unknown) are
// always included — the requester may be missing them regardless of
// its delta floor. RecordsSince(0) is equivalent to Records().
func (t *MetaTable) RecordsSince(since proto.Seq) []proto.MetaRecord {
	out := make([]proto.MetaRecord, 0, len(t.entries))
	for _, e := range t.entries {
		if e.Seq == 0 || e.Seq > since {
			out = append(out, e.Rec)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Key != out[j].Key {
			return out[i].Key < out[j].Key
		}
		return out[i].Version < out[j].Version
	})
	return out
}

// MaxSeq returns the highest log sequence recorded in the table.
func (t *MetaTable) MaxSeq() proto.Seq {
	var max proto.Seq
	for _, e := range t.entries {
		if e.Seq > max {
			max = e.Seq
		}
	}
	return max
}

// Range calls fn for every entry until fn returns false.
func (t *MetaTable) Range(fn func(*Entry) bool) {
	for _, e := range t.entries {
		if !fn(e) {
			return
		}
	}
}

// VersionRef points from the volatile hashtable into a memgest.
type VersionRef struct {
	Version proto.Version
	Memgest proto.MemgestID
}

// VolatileIndex is the per-coordinator volatile hashtable mapping each
// key to its versions across all memgests, newest first. It is not
// replicated: after a failure it is rebuilt from the union of the
// memgests' metadata hashtables (Section 5.1).
type VolatileIndex struct {
	m map[string][]VersionRef
}

// NewVolatileIndex creates an empty index.
func NewVolatileIndex() *VolatileIndex {
	return &VolatileIndex{m: make(map[string][]VersionRef)}
}

// Add records that (key, version) lives in memgest mg. Versions are
// kept sorted descending; duplicate versions replace the memgest ref
// (a key's version is globally unique across memgests by design).
func (v *VolatileIndex) Add(key string, ver proto.Version, mg proto.MemgestID) {
	refs := v.m[key]
	i := sort.Search(len(refs), func(i int) bool { return refs[i].Version <= ver })
	if i < len(refs) && refs[i].Version == ver {
		refs[i].Memgest = mg
		v.m[key] = refs
		return
	}
	refs = append(refs, VersionRef{})
	copy(refs[i+1:], refs[i:])
	refs[i] = VersionRef{ver, mg}
	v.m[key] = refs
}

// Remove drops (key, version) from the index.
func (v *VolatileIndex) Remove(key string, ver proto.Version) {
	refs := v.m[key]
	i := sort.Search(len(refs), func(i int) bool { return refs[i].Version <= ver })
	if i >= len(refs) || refs[i].Version != ver {
		return
	}
	refs = append(refs[:i], refs[i+1:]...)
	if len(refs) == 0 {
		delete(v.m, key)
	} else {
		v.m[key] = refs
	}
}

// Highest returns the newest version ref for key (committed or not),
// which is what put uses to pick the next version and get uses to
// locate the value.
func (v *VolatileIndex) Highest(key string) (VersionRef, bool) {
	refs := v.m[key]
	if len(refs) == 0 {
		return VersionRef{}, false
	}
	return refs[0], true
}

// All returns every version of key, newest first (a copy).
func (v *VolatileIndex) All(key string) []VersionRef {
	return append([]VersionRef(nil), v.m[key]...)
}

// Older returns every version of key strictly older than ver.
func (v *VolatileIndex) Older(key string, ver proto.Version) []VersionRef {
	refs := v.m[key]
	i := sort.Search(len(refs), func(i int) bool { return refs[i].Version <= ver })
	// refs[i] may equal ver; older entries start after it.
	for i < len(refs) && refs[i].Version == ver {
		i++
	}
	return append([]VersionRef(nil), refs[i:]...)
}

// Keys returns the number of distinct keys.
func (v *VolatileIndex) Keys() int { return len(v.m) }

// EachKey calls fn for every key in the index until fn returns false.
// Iteration order is unspecified (map order); callers that need
// determinism must collect and sort.
func (v *VolatileIndex) EachKey(fn func(key string) bool) {
	for k := range v.m {
		if !fn(k) {
			return
		}
	}
}

// Clear empties the index (used before a rebuild).
func (v *VolatileIndex) Clear() {
	v.m = make(map[string][]VersionRef)
}

// RebuildFrom reconstructs the index from metadata tables, keyed by
// their memgest IDs — the recovery path of Section 5.1: "It can be
// reconstructed by combining metadata hashtables of all local
// memgests."
func (v *VolatileIndex) RebuildFrom(tables map[proto.MemgestID]*MetaTable) {
	v.Clear()
	for mg, t := range tables {
		t.Range(func(e *Entry) bool {
			v.Add(e.Rec.Key, e.Rec.Version, mg)
			return true
		})
	}
}
