// Package workload generates the synthetic loads of the paper's
// evaluation: YCSB-style key-value request streams with Zipfian or
// uniform key popularity, configurable get:put mixes (100:0, 95:5,
// 50:50, 0:100), fixed-size keys and values, and the open-loop arrival
// schedules of Figures 9 (one new 400K req/s client per second) and 11
// (a single client doubling its rate each second).
package workload

import (
	"fmt"
	"math"
	"math/rand"
	"time"
)

// OpKind is a request type.
type OpKind uint8

const (
	OpGet OpKind = iota
	OpPut
)

// Op is one generated request.
type Op struct {
	Kind  OpKind
	Key   string
	Value []byte
	// At is the scheduled arrival time for open-loop schedules.
	At time.Duration
}

// Zipfian draws keys 0..n-1 with the YCSB Zipfian distribution
// (exponent theta, default 0.99): a few keys are hot, the tail cold.
// The implementation follows Gray et al.'s "Quickly Generating
// Billion-Record Synthetic Databases" rejection-free method used by
// YCSB.
type Zipfian struct {
	n     int
	theta float64
	alpha float64
	zetan float64
	eta   float64
	z2    float64
	rng   *rand.Rand
}

// DefaultTheta is YCSB's default Zipfian constant.
const DefaultTheta = 0.99

// NewZipfian builds a generator over n items with the given theta in
// (0,1); it panics on invalid parameters.
func NewZipfian(n int, theta float64, seed int64) *Zipfian {
	if n <= 0 {
		panic(fmt.Sprintf("workload: zipfian over %d items", n))
	}
	if theta <= 0 || theta >= 1 {
		panic(fmt.Sprintf("workload: zipfian theta %v out of (0,1)", theta))
	}
	z := &Zipfian{n: n, theta: theta, rng: rand.New(rand.NewSource(seed))}
	z.zetan = zeta(n, theta)
	z.z2 = zeta(2, theta)
	z.alpha = 1 / (1 - theta)
	z.eta = (1 - math.Pow(2/float64(n), 1-theta)) / (1 - z.z2/z.zetan)
	return z
}

func zeta(n int, theta float64) float64 {
	sum := 0.0
	for i := 1; i <= n; i++ {
		sum += 1 / math.Pow(float64(i), theta)
	}
	return sum
}

// Next draws the next item index in [0, n).
func (z *Zipfian) Next() int {
	u := z.rng.Float64()
	uz := u * z.zetan
	if uz < 1 {
		return 0
	}
	if uz < 1+math.Pow(0.5, z.theta) {
		return 1
	}
	return int(float64(z.n) * math.Pow(z.eta*u-z.eta+1, z.alpha))
}

// Uniform draws keys uniformly.
type Uniform struct {
	n   int
	rng *rand.Rand
}

// NewUniform builds a uniform key chooser over n items.
func NewUniform(n int, seed int64) *Uniform {
	if n <= 0 {
		panic("workload: uniform over zero items")
	}
	return &Uniform{n: n, rng: rand.New(rand.NewSource(seed))}
}

// Next draws the next item index.
func (u *Uniform) Next() int { return u.rng.Intn(u.n) }

// KeyChooser abstracts the popularity distribution.
type KeyChooser interface {
	Next() int
}

// Mix describes a get:put ratio, e.g. Mix{Get: 95, Put: 5}.
type Mix struct {
	Get, Put int
}

func (m Mix) String() string { return fmt.Sprintf("(%d%%:%d%%)", m.Get, m.Put) }

// PaperMixes are the four workload mixes of Figure 11.
var PaperMixes = []Mix{{100, 0}, {95, 5}, {50, 50}, {0, 100}}

// Generator produces request streams with the paper's parameters:
// 8-byte keys, 1 KiB values by default.
type Generator struct {
	Keys      KeyChooser
	Mix       Mix
	KeyLen    int
	ValueSize int
	rng       *rand.Rand
	value     []byte
}

// NewGenerator builds a generator; zero KeyLen/ValueSize select the
// paper's 8 B keys and 1 KiB values.
func NewGenerator(keys KeyChooser, mix Mix, seed int64) *Generator {
	g := &Generator{Keys: keys, Mix: mix, KeyLen: 8, ValueSize: 1024, rng: rand.New(rand.NewSource(seed))}
	g.value = make([]byte, g.ValueSize)
	g.rng.Read(g.value)
	return g
}

// SetValueSize changes the value size for subsequent ops.
func (g *Generator) SetValueSize(n int) {
	g.ValueSize = n
	g.value = make([]byte, n)
	g.rng.Read(g.value)
}

// Key formats item index i as a fixed-width key of KeyLen bytes.
func (g *Generator) Key(i int) string {
	return fmt.Sprintf("%0*x", g.KeyLen, i)[:g.KeyLen]
}

// Next produces the next operation (no arrival time).
func (g *Generator) Next() Op {
	op := Op{Key: g.Key(g.Keys.Next())}
	total := g.Mix.Get + g.Mix.Put
	if total == 0 || g.rng.Intn(total) < g.Mix.Get {
		op.Kind = OpGet
	} else {
		op.Kind = OpPut
		op.Value = g.value
	}
	return op
}

// ConstantRate schedules n ops at a fixed request rate starting at
// `start`, the open-loop pattern of Figure 9's clients.
func (g *Generator) ConstantRate(start time.Duration, ratePerSec float64, n int) []Op {
	if ratePerSec <= 0 {
		panic("workload: non-positive rate")
	}
	gap := time.Duration(float64(time.Second) / ratePerSec)
	ops := make([]Op, n)
	at := start
	for i := range ops {
		ops[i] = g.Next()
		ops[i].At = at
		at += gap
	}
	return ops
}

// DoublingRamp schedules the Figure 11 pattern: each second the client
// doubles its rate from startRate until it exceeds endRate.
func (g *Generator) DoublingRamp(startRate, endRate float64) []Op {
	if startRate <= 0 || endRate < startRate {
		panic("workload: invalid ramp")
	}
	var ops []Op
	start := time.Duration(0)
	for rate := startRate; rate <= endRate; rate *= 2 {
		n := int(rate) // one second at this rate
		ops = append(ops, g.ConstantRate(start, rate, n)...)
		start += time.Second
	}
	return ops
}

// ClientRamp schedules Figure 9's pattern: `clients` independent
// streams, stream i starting at second i, each offering ratePerSec for
// the remaining duration.
func ClientRamp(mkGen func(i int) *Generator, clients int, ratePerSec float64, total time.Duration) [][]Op {
	out := make([][]Op, clients)
	for i := 0; i < clients; i++ {
		start := time.Duration(i) * time.Second
		if start >= total {
			break
		}
		n := int(ratePerSec * (total - start).Seconds())
		out[i] = mkGen(i).ConstantRate(start, ratePerSec, n)
	}
	return out
}
