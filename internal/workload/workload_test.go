package workload

import (
	"math"
	"testing"
	"time"
)

func TestZipfianRangeAndSkew(t *testing.T) {
	z := NewZipfian(10000, DefaultTheta, 1)
	counts := make(map[int]int)
	const draws = 200000
	for i := 0; i < draws; i++ {
		v := z.Next()
		if v < 0 || v >= 10000 {
			t.Fatalf("draw %d out of range", v)
		}
		counts[v]++
	}
	// Zipf(0.99): item 0 should dominate; the top item takes roughly
	// 1/zeta(n) ~ 10% of the mass for n=10k.
	p0 := float64(counts[0]) / draws
	if p0 < 0.05 || p0 > 0.2 {
		t.Fatalf("hottest key probability %.3f, want ~0.1", p0)
	}
	if counts[0] <= counts[1] || counts[1] <= counts[100] {
		t.Fatal("popularity not monotone in rank")
	}
}

func TestZipfianDeterministicBySeed(t *testing.T) {
	a := NewZipfian(100, DefaultTheta, 7)
	b := NewZipfian(100, DefaultTheta, 7)
	for i := 0; i < 100; i++ {
		if a.Next() != b.Next() {
			t.Fatal("same seed diverged")
		}
	}
}

func TestZipfianValidation(t *testing.T) {
	for _, f := range []func(){
		func() { NewZipfian(0, 0.99, 1) },
		func() { NewZipfian(10, 0, 1) },
		func() { NewZipfian(10, 1, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("invalid params accepted")
				}
			}()
			f()
		}()
	}
}

func TestUniform(t *testing.T) {
	u := NewUniform(100, 3)
	counts := make([]int, 100)
	for i := 0; i < 100000; i++ {
		counts[u.Next()]++
	}
	for i, c := range counts {
		if math.Abs(float64(c)-1000) > 300 {
			t.Fatalf("key %d drawn %d times, want ~1000", i, c)
		}
	}
}

func TestGeneratorMix(t *testing.T) {
	for _, mix := range PaperMixes {
		g := NewGenerator(NewUniform(1000, 1), mix, 2)
		gets, puts := 0, 0
		for i := 0; i < 10000; i++ {
			op := g.Next()
			if len(op.Key) != 8 {
				t.Fatalf("key %q not 8 bytes", op.Key)
			}
			switch op.Kind {
			case OpGet:
				if op.Value != nil {
					t.Fatal("get with value")
				}
				gets++
			case OpPut:
				if len(op.Value) != 1024 {
					t.Fatalf("put value %d bytes, want 1024", len(op.Value))
				}
				puts++
			}
		}
		wantGet := float64(mix.Get) / 100
		if math.Abs(float64(gets)/10000-wantGet) > 0.02 {
			t.Fatalf("mix %v: got %d gets of 10000", mix, gets)
		}
		_ = puts
	}
}

func TestGeneratorValueSize(t *testing.T) {
	g := NewGenerator(NewUniform(10, 1), Mix{0, 100}, 1)
	g.SetValueSize(64)
	if op := g.Next(); len(op.Value) != 64 {
		t.Fatalf("value size %d", len(op.Value))
	}
}

func TestConstantRate(t *testing.T) {
	g := NewGenerator(NewUniform(10, 1), Mix{50, 50}, 1)
	ops := g.ConstantRate(time.Second, 1000, 100)
	if len(ops) != 100 {
		t.Fatalf("%d ops", len(ops))
	}
	if ops[0].At != time.Second {
		t.Fatalf("first at %v", ops[0].At)
	}
	gap := ops[1].At - ops[0].At
	if gap != time.Millisecond {
		t.Fatalf("gap %v, want 1ms", gap)
	}
	for i := 1; i < len(ops); i++ {
		if ops[i].At <= ops[i-1].At {
			t.Fatal("arrival times not increasing")
		}
	}
}

func TestDoublingRamp(t *testing.T) {
	g := NewGenerator(NewUniform(10, 1), Mix{0, 100}, 1)
	ops := g.DoublingRamp(1000, 4000)
	// 1s at 1000 + 1s at 2000 + 1s at 4000.
	if len(ops) != 1000+2000+4000 {
		t.Fatalf("%d ops", len(ops))
	}
	if ops[len(ops)-1].At >= 3*time.Second {
		t.Fatalf("ramp overran: last at %v", ops[len(ops)-1].At)
	}
}

func TestClientRamp(t *testing.T) {
	streams := ClientRamp(func(i int) *Generator {
		return NewGenerator(NewUniform(100, int64(i)), Mix{0, 100}, int64(i))
	}, 4, 1000, 4*time.Second)
	if len(streams) != 4 {
		t.Fatalf("%d streams", len(streams))
	}
	for i, ops := range streams {
		wantStart := time.Duration(i) * time.Second
		if ops[0].At != wantStart {
			t.Fatalf("stream %d starts at %v", i, ops[0].At)
		}
		wantN := int(1000 * (4*time.Second - wantStart).Seconds())
		if len(ops) != wantN {
			t.Fatalf("stream %d has %d ops, want %d", i, len(ops), wantN)
		}
	}
}

func BenchmarkZipfianNext(b *testing.B) {
	z := NewZipfian(1_000_000, DefaultTheta, 1)
	for i := 0; i < b.N; i++ {
		z.Next()
	}
}
