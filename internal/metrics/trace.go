package metrics

import "time"

// TraceKeyLen bounds the key bytes preserved per trace entry. Longer
// keys are truncated — the ring exists to answer "what was this node
// just doing", not to be a store.
const TraceKeyLen = 32

// TraceOp classifies a traced operation.
type TraceOp uint8

const (
	TraceNone TraceOp = iota
	TracePut
	TraceGet
	TraceDelete
	TraceMove
	TraceConvert
)

func (o TraceOp) String() string {
	switch o {
	case TracePut:
		return "put"
	case TraceGet:
		return "get"
	case TraceDelete:
		return "delete"
	case TraceMove:
		return "move"
	case TraceConvert:
		return "convert"
	}
	return "none"
}

// TraceEntry is one recorded operation. All fields are fixed-size so
// recording copies bytes into preallocated slots and never allocates.
type TraceEntry struct {
	// Seq is the global record sequence (monotone; used to order and
	// to detect how much history the ring has dropped).
	Seq uint64
	// At is the node-local time the operation completed.
	At time.Duration
	// Dur is the commit/serve latency attributed to the operation
	// (zero for operations answered within a single event).
	Dur time.Duration
	// Op, Status, Memgest, Version describe the operation.
	Op      TraceOp
	Status  uint8
	Memgest uint32
	Version uint64
	// Key holds the first KeyLen bytes of the key.
	Key    [TraceKeyLen]byte
	KeyLen uint8
}

// KeyString returns the (possibly truncated) key.
func (e *TraceEntry) KeyString() string { return string(e.Key[:e.KeyLen]) }

// TraceRing is a fixed-capacity ring buffer of per-op trace entries.
//
// It is deliberately NOT internally synchronized: the intended writer
// is a node state machine whose events are already serialized by its
// runner, and snapshots are taken through the same runner lock
// (Runner.Inspect). Keeping the ring lock- and atomic-free makes
// Record a plain struct store — ~10ns and zero allocations — which is
// what lets every operation be traced unconditionally.
type TraceRing struct {
	entries []TraceEntry
	next    uint64
}

// NewTraceRing creates a ring holding the n most recent entries
// (n <= 0 selects 256; n is rounded up to a power of two).
func NewTraceRing(n int) *TraceRing {
	if n <= 0 {
		n = 256
	}
	size := 1
	for size < n {
		size <<= 1
	}
	return &TraceRing{entries: make([]TraceEntry, size)}
}

// Record appends one entry, overwriting the oldest once full.
func (r *TraceRing) Record(op TraceOp, key string, memgest uint32, version uint64, status uint8, at, dur time.Duration) {
	e := &r.entries[r.next&uint64(len(r.entries)-1)]
	e.Seq = r.next
	e.At = at
	e.Dur = dur
	e.Op = op
	e.Status = status
	e.Memgest = memgest
	e.Version = version
	n := copy(e.Key[:], key)
	e.KeyLen = uint8(n)
	r.next++
}

// Len returns how many entries are currently held.
func (r *TraceRing) Len() int {
	if r.next < uint64(len(r.entries)) {
		return int(r.next)
	}
	return len(r.entries)
}

// Recorded returns the total number of entries ever recorded.
func (r *TraceRing) Recorded() uint64 { return r.next }

// Last copies out the most recent n entries, oldest first. It must be
// called under the same exclusion as Record (see the type doc).
func (r *TraceRing) Last(n int) []TraceEntry {
	held := r.Len()
	if n <= 0 || n > held {
		n = held
	}
	out := make([]TraceEntry, n)
	for i := 0; i < n; i++ {
		seq := r.next - uint64(n-i)
		out[i] = r.entries[seq&uint64(len(r.entries)-1)]
	}
	return out
}
