// Package metrics is the cluster's always-on instrumentation layer:
// atomic counters, gauges, high-water marks, and lock-free
// log-bucketed latency histograms, plus a registry that renders any
// set of them as an expvar-style JSON document.
//
// Everything here is built for the hot path. Recording a sample is a
// handful of uncontended atomic adds — no locks, no allocation, no
// branches that depend on whether anyone is scraping — which is what
// lets the put/get pipeline stay instrumented permanently instead of
// behind a build tag. Reading is equally unceremonious: scrapers load
// the atomics whenever they like and may observe a sample set that is
// mid-update (count ahead of sum by one sample, say); for monitoring
// that skew is harmless and the alternative — a lock shared with the
// data path — is exactly what this package exists to avoid.
package metrics

import (
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Load returns the current count.
func (c *Counter) Load() uint64 { return c.v.Load() }

// MetricValue implements Var.
func (c *Counter) MetricValue() any { return c.Load() }

// Gauge is an instantaneous atomic value that can move both ways.
type Gauge struct{ v atomic.Int64 }

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add moves the gauge by delta (negative to decrease).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// MetricValue implements Var.
func (g *Gauge) MetricValue() any { return g.Load() }

// GaugeFunc is a gauge whose value is computed at scrape time from a
// callback — for quantities the owner already tracks elsewhere (queue
// backlogs, goroutine counts) where mirroring them into an atomic on
// every change would put a store on the hot path for the benefit of
// an occasional scraper. The callback must be safe to call from any
// goroutine.
type GaugeFunc func() int64

// MetricValue implements Var.
func (f GaugeFunc) MetricValue() any { return f() }

// MaxGauge tracks the high-water mark of an observed quantity (queue
// depths, pipeline occupancy). Observe is wait-free in the common case
// where the mark does not move.
type MaxGauge struct{ v atomic.Int64 }

// Observe raises the mark to v if v exceeds it.
func (g *MaxGauge) Observe(v int64) {
	for {
		cur := g.v.Load()
		if v <= cur || g.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Load returns the high-water mark.
func (g *MaxGauge) Load() int64 { return g.v.Load() }

// MetricValue implements Var.
func (g *MaxGauge) MetricValue() any { return g.Load() }

// histBuckets is the bucket count of a Histogram: one power-of-two
// bucket per possible bit length of a nanosecond duration, so bucket i
// holds samples in [2^(i-1), 2^i) ns. 64 buckets span 1ns..~584y.
const histBuckets = 64

// Histogram is a lock-free log2-bucketed latency histogram. Observe
// costs three uncontended atomic adds and never allocates; quantiles
// are therefore approximate (within a factor of two, the bucket
// width), which is the right trade for an always-on hot-path
// instrument — exact percentiles belong to offline experiments.
type Histogram struct {
	count   atomic.Uint64
	sumNS   atomic.Uint64
	buckets [histBuckets]atomic.Uint64
}

// Observe records one duration. Negative durations clamp to zero.
func (h *Histogram) Observe(d time.Duration) {
	ns := uint64(0)
	if d > 0 {
		ns = uint64(d)
	}
	h.count.Add(1)
	h.sumNS.Add(ns)
	h.buckets[bits.Len64(ns)].Add(1)
}

// HistBucket is one populated histogram bucket: Count samples whose
// nanosecond value was < Le (and >= the previous bucket's Le).
type HistBucket struct {
	Le    uint64 `json:"le_ns"`
	Count uint64 `json:"count"`
}

// HistSnapshot is a point-in-time copy of a histogram, shaped for JSON.
type HistSnapshot struct {
	Count   uint64       `json:"count"`
	SumNS   uint64       `json:"sum_ns"`
	Buckets []HistBucket `json:"buckets,omitempty"`
}

// Mean returns the mean sample in nanoseconds (0 when empty).
func (s HistSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.SumNS) / float64(s.Count)
}

// Quantile returns an upper bound for the q-quantile (0..1) in
// nanoseconds, resolved to bucket boundaries.
func (s HistSnapshot) Quantile(q float64) uint64 {
	if s.Count == 0 {
		return 0
	}
	rank := uint64(q * float64(s.Count))
	if rank >= s.Count {
		rank = s.Count - 1
	}
	var seen uint64
	for _, b := range s.Buckets {
		seen += b.Count
		if seen > rank {
			return b.Le
		}
	}
	return s.Buckets[len(s.Buckets)-1].Le
}

// Merge returns the union of two snapshots (bucket counts added),
// for aggregating one histogram across nodes.
func (s HistSnapshot) Merge(o HistSnapshot) HistSnapshot {
	out := HistSnapshot{Count: s.Count + o.Count, SumNS: s.SumNS + o.SumNS}
	byLe := make(map[uint64]uint64, len(s.Buckets)+len(o.Buckets))
	for _, b := range s.Buckets {
		byLe[b.Le] += b.Count
	}
	for _, b := range o.Buckets {
		byLe[b.Le] += b.Count
	}
	les := make([]uint64, 0, len(byLe))
	for le := range byLe {
		les = append(les, le)
	}
	sort.Slice(les, func(i, j int) bool { return les[i] < les[j] })
	for _, le := range les {
		out.Buckets = append(out.Buckets, HistBucket{Le: le, Count: byLe[le]})
	}
	return out
}

// Snapshot copies the histogram. The copy is internally consistent
// only up to concurrent Observes (see the package doc).
func (h *Histogram) Snapshot() HistSnapshot {
	s := HistSnapshot{Count: h.count.Load(), SumNS: h.sumNS.Load()}
	for i := range h.buckets {
		n := h.buckets[i].Load()
		if n == 0 {
			continue
		}
		le := uint64(1) << i // bucket i holds ns with bit length i => ns < 2^i
		if i == 0 {
			le = 1
		}
		s.Buckets = append(s.Buckets, HistBucket{Le: le, Count: n})
	}
	return s
}

// MetricValue implements Var.
func (h *Histogram) MetricValue() any { return h.Snapshot() }

// Var is anything the registry can render: its MetricValue must be
// marshalable by encoding/json.
type Var interface{ MetricValue() any }

// Registry is a named collection of vars. Registration happens at
// setup time under a lock; reading takes the lock only to walk the
// name list, never blocking writers of the vars themselves.
type Registry struct {
	mu    sync.Mutex
	names []string
	vars  map[string]Var
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{vars: make(map[string]Var)}
}

// Register adds (or replaces) a named var.
func (r *Registry) Register(name string, v Var) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.vars[name]; !ok {
		r.names = append(r.names, name)
	}
	r.vars[name] = v
}

// Snapshot returns the current value of every registered var, keyed by
// name — ready for json.Marshal.
func (r *Registry) Snapshot() map[string]any {
	r.mu.Lock()
	names := append([]string(nil), r.names...)
	vars := make([]Var, len(names))
	for i, n := range names {
		vars[i] = r.vars[n]
	}
	r.mu.Unlock()
	out := make(map[string]any, len(names))
	for i, n := range names {
		out[n] = vars[i].MetricValue()
	}
	return out
}

// Default is the process-wide registry. Subsystems with process-scoped
// instruments (transport, client) register into it at init; per-node
// instruments live on the node and are scraped through its runner.
var Default = NewRegistry()
