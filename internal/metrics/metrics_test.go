package metrics

import (
	"encoding/json"
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestCounterGauge(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(41)
	if c.Load() != 42 {
		t.Fatalf("counter = %d", c.Load())
	}
	var g Gauge
	g.Set(7)
	g.Add(-3)
	if g.Load() != 4 {
		t.Fatalf("gauge = %d", g.Load())
	}
	var m MaxGauge
	for _, v := range []int64{3, 9, 1, 9, 4} {
		m.Observe(v)
	}
	if m.Load() != 9 {
		t.Fatalf("max gauge = %d", m.Load())
	}
}

func TestHistogramBucketsAndQuantiles(t *testing.T) {
	var h Histogram
	// 100 samples at ~1us, 10 at ~1ms: the p50 bound must sit at the
	// microsecond bucket, the p99 at the millisecond one.
	for i := 0; i < 100; i++ {
		h.Observe(time.Microsecond)
	}
	for i := 0; i < 10; i++ {
		h.Observe(time.Millisecond)
	}
	s := h.Snapshot()
	if s.Count != 110 {
		t.Fatalf("count = %d", s.Count)
	}
	if want := uint64(100*1000 + 10*1000000); s.SumNS != want {
		t.Fatalf("sum = %d, want %d", s.SumNS, want)
	}
	if p50 := s.Quantile(0.5); p50 < 1000 || p50 > 2048 {
		t.Fatalf("p50 bound = %dns, want ~1-2us", p50)
	}
	if p99 := s.Quantile(0.99); p99 < 1000000 || p99 > 2097152 {
		t.Fatalf("p99 bound = %dns, want ~1-2ms", p99)
	}
	if mean := s.Mean(); mean < 90000 || mean > 95000 {
		t.Fatalf("mean = %.0fns", mean)
	}
	// Zero and negative samples land in the smallest bucket.
	var z Histogram
	z.Observe(0)
	z.Observe(-time.Second)
	zs := z.Snapshot()
	if zs.Count != 2 || zs.SumNS != 0 {
		t.Fatalf("zero-sample snapshot: %+v", zs)
	}
	if zs.Quantile(1.0) != 1 {
		t.Fatalf("zero quantile bound = %d", zs.Quantile(1.0))
	}
	var empty Histogram
	if empty.Snapshot().Quantile(0.5) != 0 || empty.Snapshot().Mean() != 0 {
		t.Fatal("empty histogram quantile/mean not zero")
	}
}

func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	var wg sync.WaitGroup
	const workers, each = 8, 10000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				h.Observe(time.Duration(i) * time.Nanosecond)
			}
		}()
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != workers*each {
		t.Fatalf("count = %d, want %d", s.Count, workers*each)
	}
	var inBuckets uint64
	for _, b := range s.Buckets {
		inBuckets += b.Count
	}
	if inBuckets != s.Count {
		t.Fatalf("buckets hold %d of %d samples", inBuckets, s.Count)
	}
}

func TestTraceRing(t *testing.T) {
	r := NewTraceRing(4)
	if r.Len() != 0 {
		t.Fatal("fresh ring not empty")
	}
	for i := 0; i < 6; i++ {
		r.Record(TracePut, fmt.Sprintf("key-%d", i), 2, uint64(i+1), 0,
			time.Duration(i)*time.Millisecond, time.Microsecond)
	}
	if r.Len() != 4 || r.Recorded() != 6 {
		t.Fatalf("len=%d recorded=%d", r.Len(), r.Recorded())
	}
	last := r.Last(0)
	if len(last) != 4 {
		t.Fatalf("Last(0) returned %d entries", len(last))
	}
	// Oldest-first, holding the 4 most recent records (2..5).
	for i, e := range last {
		want := fmt.Sprintf("key-%d", i+2)
		if e.KeyString() != want || e.Version != uint64(i+3) {
			t.Fatalf("entry %d: key=%q version=%d", i, e.KeyString(), e.Version)
		}
		if e.Op != TracePut || e.Op.String() != "put" {
			t.Fatalf("entry %d: op %v", i, e.Op)
		}
	}
	if got := r.Last(2); len(got) != 2 || got[1].KeyString() != "key-5" {
		t.Fatalf("Last(2) = %+v", got)
	}
	// Keys longer than TraceKeyLen truncate without allocation.
	long := string(make([]byte, 3*TraceKeyLen))
	r.Record(TraceGet, long, 1, 1, 0, 0, 0)
	if e := r.Last(1)[0]; int(e.KeyLen) != TraceKeyLen {
		t.Fatalf("long key kept %d bytes", e.KeyLen)
	}
}

func TestRegistrySnapshotJSON(t *testing.T) {
	reg := NewRegistry()
	var c Counter
	var g Gauge
	var m MaxGauge
	var h Histogram
	c.Add(3)
	g.Set(-2)
	m.Observe(17)
	h.Observe(time.Microsecond)
	reg.Register("ops.total", &c)
	reg.Register("queue.depth", &g)
	reg.Register("queue.high_water", &m)
	reg.Register("latency", &h)
	// Re-registering a name replaces without duplicating.
	reg.Register("ops.total", &c)

	snap := reg.Snapshot()
	if len(snap) != 4 {
		t.Fatalf("snapshot has %d vars", len(snap))
	}
	b, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	var back map[string]json.RawMessage
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if string(back["ops.total"]) != "3" || string(back["queue.depth"]) != "-2" || string(back["queue.high_water"]) != "17" {
		t.Fatalf("scalar vars: %s", b)
	}
	var hs HistSnapshot
	if err := json.Unmarshal(back["latency"], &hs); err != nil || hs.Count != 1 {
		t.Fatalf("histogram var: %s (%v)", back["latency"], err)
	}
}

// --- hot-path pins -------------------------------------------------------

// TestRecordingAllocs pins every recording primitive at zero
// allocations: instrumentation rides the put/get hot path, where PR 1
// established an allocation-free regime this package must not break.
func TestRecordingAllocs(t *testing.T) {
	var c Counter
	var g Gauge
	var m MaxGauge
	var h Histogram
	r := NewTraceRing(256)
	cases := []struct {
		name string
		f    func()
	}{
		{"Counter.Inc", func() { c.Inc() }},
		{"Gauge.Add", func() { g.Add(1) }},
		{"MaxGauge.Observe", func() { m.Observe(5) }},
		{"Histogram.Observe", func() { h.Observe(123 * time.Microsecond) }},
		{"TraceRing.Record", func() {
			r.Record(TracePut, "some-representative-key", 3, 17, 0, time.Second, time.Microsecond)
		}},
	}
	for _, tc := range cases {
		if allocs := testing.AllocsPerRun(200, tc.f); allocs != 0 {
			t.Errorf("%s: %.1f allocs/op, want 0", tc.name, allocs)
		}
	}
}

// TestRecordingCheap is a coarse regression guard on per-sample cost.
// The design target is <~20ns per recorded sample (a few uncontended
// atomic adds); the assertion allows a wide margin so shared CI
// machines do not flake, while still catching an accidental lock or
// allocation (both cost an order of magnitude more).
func TestRecordingCheap(t *testing.T) {
	var h Histogram
	const n = 1_000_000
	start := time.Now()
	for i := 0; i < n; i++ {
		h.Observe(time.Duration(i))
	}
	perOp := time.Since(start) / n
	if perOp > 500*time.Nanosecond {
		t.Fatalf("Histogram.Observe costs %v/op, want well under 500ns (target ~20ns)", perOp)
	}
	r := NewTraceRing(256)
	start = time.Now()
	for i := 0; i < n; i++ {
		r.Record(TraceGet, "hot-key", 1, uint64(i), 0, time.Duration(i), 0)
	}
	perOp = time.Since(start) / n
	if perOp > 500*time.Nanosecond {
		t.Fatalf("TraceRing.Record costs %v/op, want well under 500ns (target ~20ns)", perOp)
	}
}

// Benchmarks: the CI bench smoke run publishes these so the per-sample
// cost has a visible trajectory.

func BenchmarkCounterInc(b *testing.B) {
	var c Counter
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	var h Histogram
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(time.Duration(i))
	}
}

func BenchmarkTraceRingRecord(b *testing.B) {
	r := NewTraceRing(256)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Record(TracePut, "bench-key", 2, uint64(i), 0, time.Duration(i), time.Microsecond)
	}
}

func BenchmarkHistogramSnapshot(b *testing.B) {
	var h Histogram
	for i := 0; i < 1000; i++ {
		h.Observe(time.Duration(i) * time.Microsecond)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = h.Snapshot()
	}
}
