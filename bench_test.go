package ring_test

// The benchmark harness of the reproduction: one benchmark per table
// and figure of the paper's evaluation (driving the calibrated
// discrete-event simulator or the analytic models), plus live
// benchmarks that measure the actual Go implementation end to end over
// the in-memory fabric. EXPERIMENTS.md records paper-vs-measured
// values for each.
//
// The figure benchmarks report their headline numbers via
// b.ReportMetric, so `go test -bench=. -benchmem` regenerates the
// whole evaluation.

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"ring"
	"ring/internal/core"
	"ring/internal/experiments"
	"ring/internal/gf"
	"ring/internal/reliability"
	"ring/internal/workload"
)

// benchBurst keeps the simulated saturation windows short enough for
// the full suite to run in minutes while still far exceeding every
// scheme's queue drain time.
const benchBurst = 20 * time.Millisecond

func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table1(benchBurst)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[1].PutLatencyX, "rep3-putlat-x")
		b.ReportMetric(rows[2].PutLatencyX, "rs32-putlat-x")
		b.ReportMetric(rows[1].PutThroughputX, "rep3-tput-x")
		b.ReportMetric(rows[2].PutThroughputX, "rs32-tput-x")
	}
}

func BenchmarkFig2Reliability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts := experiments.Fig2Reliability(reliability.Params{})
		for _, p := range pts {
			if p.K == 3 && p.M == 1 && p.S == 3 {
				b.ReportMetric(p.Nines, "rs31-nines")
			}
			if p.K == 3 && p.M == 1 && p.S == 7 {
				b.ReportMetric(p.Nines, "srs317-nines")
			}
		}
	}
}

func BenchmarkFig7PutLatency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		series, err := experiments.Fig7Put(15)
		if err != nil {
			b.Fatal(err)
		}
		for _, s := range series {
			if s.Label == "REP1" || s.Label == "SRS32" {
				// 1 KiB is index 9 (sizes 2^1..2^11).
				b.ReportMetric(float64(s.Points[9].Median)/1e3, s.Label+"-put1KiB-µs")
			}
		}
	}
}

func BenchmarkFig7GetLatency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s, err := experiments.Fig7Get(15)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(s.Points[9].Median)/1e3, "get1KiB-µs")
	}
}

func BenchmarkFig7cBaselines(b *testing.B) {
	for i := 0; i < b.N; i++ {
		series := experiments.Fig7c()
		for _, s := range series {
			if s.Label == "memcached put" {
				b.ReportMetric(float64(s.Points[9].Median)/1e3, "memcached-put-µs")
			}
			if s.Label == "RAMCloud put" {
				b.ReportMetric(float64(s.Points[9].Median)/1e3, "ramcloud-put-µs")
			}
		}
	}
}

func BenchmarkFig8MoveLatency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		series, err := experiments.Fig8Move(15)
		if err != nil {
			b.Fatal(err)
		}
		for _, s := range series {
			if s.Label == "to REP1" || s.Label == "to SRS32" {
				name := strings.ReplaceAll(s.Label, " ", "-")
				b.ReportMetric(float64(s.Points[9].Median)/1e3, name+"-1KiB-µs")
			}
		}
	}
}

func BenchmarkFig9Throughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		samples, err := experiments.Fig9(4, 400e3, benchBurst)
		if err != nil {
			b.Fatal(err)
		}
		for _, s := range samples {
			if s.Clients == 4 && (s.Label == "REP1" || s.Label == "REP3" || s.Label == "SRS32") {
				b.ReportMetric(s.ReqsPerSec/1e3, s.Label+"-Kreq/s")
			}
		}
	}
}

func BenchmarkFig10Pricing(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Fig10Pricing()
		for _, r := range rows {
			if r.Trace == "Financial1" && r.Class.String() == "cold" {
				b.ReportMetric(r.Total, "financial1-cold-x")
			}
		}
	}
}

func BenchmarkFig11Mixes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig11(benchBurst)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Label == "REP1" && r.Mix == (workload.Mix{Get: 100, Put: 0}) {
				b.ReportMetric(r.ReqsPerSec/1e3, "get-only-Kreq/s")
			}
			if r.Label == "REP1" && r.Mix == (workload.Mix{Get: 0, Put: 100}) {
				b.ReportMetric(r.ReqsPerSec/1e3, "rep1-put-Kreq/s")
			}
		}
	}
}

func BenchmarkFig12Recovery(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts, err := experiments.Fig12Recovery([]int{512, 2048, 8192})
		if err != nil {
			b.Fatal(err)
		}
		last := pts[len(pts)-1]
		b.ReportMetric(float64(last.Latency)/1e3, "recovery-µs")
		b.ReportMetric(float64(last.MetaBytes)/1024, "metadata-KiB")
	}
}

func BenchmarkFig13BlockRecovery(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts, err := experiments.Fig13BlockRecovery([]int{4096, 65536})
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range pts {
			if p.BlockSize == 65536 {
				b.ReportMetric(float64(p.Latency)/1e3, p.Scheme+"-64KiB-µs")
			}
		}
	}
}

func BenchmarkFig16Availability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts := experiments.Fig16Availability(reliability.Params{})
		for _, p := range pts {
			if p.K == 2 && p.M == 1 && p.S == 3 {
				b.ReportMetric(p.Nines, "srs213-nines")
			}
		}
	}
}

// ----------------------------- ablation benchmarks -------------------

func BenchmarkAblationMoveVsMigrate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.AblationMoveVsMigrate(2048)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.MoveWireBytes), "move-wire-B")
		b.ReportMetric(float64(res.MigrateWireBytes), "migrate-wire-B")
		b.ReportMetric(float64(res.MoveLatency)/1e3, "move-µs")
		b.ReportMetric(float64(res.MigrateLatency)/1e3, "migrate-µs")
	}
}

func BenchmarkAblationQuorumVsSync(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.AblationQuorumVsSync(4, 1024)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.QuorumPut)/1e3, "quorum-put-µs")
		b.ReportMetric(float64(res.SyncPut)/1e3, "sync-put-µs")
	}
}

func BenchmarkAblationBalance(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.AblationBalance()
		b.ReportMetric(res.SingleGroup, "single-group-imbalance")
		b.ReportMetric(res.Rotated, "rotated-imbalance")
	}
}

// ----------------------------- zero-alloc pins -----------------------

// TestHotpathZeroAlloc pins the per-operation hot paths introduced by
// the word-wide kernels and memgest-group sharding to zero heap
// allocations — the suite-level counterpart of the per-package pins,
// so a regression in any layer fails here too.
func TestHotpathZeroAlloc(t *testing.T) {
	const c = 0x57
	src := make([]byte, 4096)
	dst := make([]byte, 4096)
	gf.WarmTables(c) // the lazy word table builds once, off the pin
	key := "alloc-pin-key"
	for name, f := range map[string]func(){
		"gf.MulSlice":    func() { gf.MulSlice(c, src, dst) },
		"gf.MulSliceXor": func() { gf.MulSliceXor(c, src, dst) },
		"gf.XorSlice":    func() { gf.XorSlice(src, dst) },
		"core.GroupOf":   func() { _ = core.GroupOf(key, 4) },
	} {
		if n := testing.AllocsPerRun(100, f); n != 0 {
			t.Errorf("%s allocates %v per call, want 0", name, n)
		}
	}
}

// ------------------------- live (real execution) benchmarks ----------

// liveCluster boots the paper deployment over the in-memory fabric for
// real end-to-end measurements of the Go implementation.
func liveCluster(b *testing.B) (*ring.Cluster, *ring.Client) {
	b.Helper()
	cl, err := ring.Start(ring.Config{
		Shards: 3, Redundant: 2,
		Memgests: []ring.Scheme{
			ring.Rep(1, 3), ring.Rep(3, 3), ring.SRS(2, 1, 3), ring.SRS(3, 2, 3),
		},
		BlockSize: 4 << 20,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(cl.Stop)
	c, err := cl.NewClient()
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(c.Close)
	return cl, c
}

// benchKeys pre-formats the key working set so the timed loops measure
// the store, not fmt.
func benchKeys(prefix string, n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("%s%d", prefix, i)
	}
	return keys
}

func benchLivePut(b *testing.B, mg ring.MemgestID, size int) {
	_, c := liveCluster(b)
	val := make([]byte, size)
	keys := benchKeys("k", 4096)
	b.SetBytes(int64(size))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.PutIn(keys[i%4096], val, mg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLivePutREP1_1KiB(b *testing.B)  { benchLivePut(b, 1, 1024) }
func BenchmarkLivePutREP3_1KiB(b *testing.B)  { benchLivePut(b, 2, 1024) }
func BenchmarkLivePutSRS21_1KiB(b *testing.B) { benchLivePut(b, 3, 1024) }
func BenchmarkLivePutSRS32_1KiB(b *testing.B) { benchLivePut(b, 4, 1024) }

func BenchmarkLiveGet1KiB(b *testing.B) {
	_, c := liveCluster(b)
	val := make([]byte, 1024)
	for i := 0; i < 256; i++ {
		if _, err := c.PutIn(fmt.Sprintf("g%d", i), val, 4); err != nil {
			b.Fatal(err)
		}
	}
	keys := benchKeys("g", 256)
	b.SetBytes(1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := c.Get(keys[i%256]); err != nil {
			b.Fatal(err)
		}
	}
}

// benchLivePipelinedPut drives the asynchronous client with `depth`
// requests in flight — the pipelining the paper's throughput numbers
// (Fig 9, Table 1) assume. Compare against the sequential
// BenchmarkLivePut* loops above to see the latency-bound vs
// fabric-bound gap.
func benchLivePipelinedPut(b *testing.B, mg ring.MemgestID, size, depth int) {
	_, c := liveCluster(b)
	val := make([]byte, size)
	keys := benchKeys("k", 4096)
	p := c.NewPipeline(depth)
	b.SetBytes(int64(size))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.PutIn(keys[i%4096], val, mg)
	}
	if err := p.Flush(); err != nil {
		b.Fatal(err)
	}
}

func BenchmarkLivePipelinedPut_REP3(b *testing.B)  { benchLivePipelinedPut(b, 2, 1024, 16) }
func BenchmarkLivePipelinedPut_SRS32(b *testing.B) { benchLivePipelinedPut(b, 4, 1024, 16) }

// BenchmarkLivePipelinedMixed runs the paper's 95/5 get/put mix with 16
// requests outstanding against SRS32.
func BenchmarkLivePipelinedMixed_SRS32(b *testing.B) {
	_, c := liveCluster(b)
	val := make([]byte, 1024)
	for i := 0; i < 256; i++ {
		if _, err := c.PutIn(fmt.Sprintf("g%d", i), val, 4); err != nil {
			b.Fatal(err)
		}
	}
	keys := benchKeys("g", 256)
	p := c.NewPipeline(16)
	b.SetBytes(1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%20 == 0 {
			p.PutIn(keys[i%256], val, 4)
		} else {
			p.Get(keys[i%256])
		}
	}
	if err := p.Flush(); err != nil {
		b.Fatal(err)
	}
}

func BenchmarkLiveMoveSRS32toREP1_1KiB(b *testing.B) {
	_, c := liveCluster(b)
	val := make([]byte, 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		key := fmt.Sprintf("m%d", i%1024)
		b.StopTimer()
		if _, err := c.PutIn(key, val, 4); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if _, err := c.Move(key, 1); err != nil {
			b.Fatal(err)
		}
	}
}
