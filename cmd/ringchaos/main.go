// Command ringchaos is the deterministic chaos-testing driver: it runs
// seeded nemesis schedules (crashes + restarts, partitions, flaky
// links) against the simulated cluster while an instrumented workload
// records every operation, then checks the history for per-key
// linearizability. A run is a pure function of its seed, so every
// failure line doubles as a repro command.
//
// Usage:
//
//	ringchaos -seed 42                 one run
//	ringchaos -seeds 1:100             a seed range (inclusive)
//	ringchaos -seed 42 -schedule '3ms:kill:2;20ms:restart:2'
//	                                   replay an explicit schedule
//	ringchaos -seed 42 -bug            inject the ack-before-quorum bug
//	                                   (the checker must catch it)
//	ringchaos -durable -seeds 1:100    crash-recovery schedules over the
//	                                   disk fault plane (kill -9 +
//	                                   recover-from-disk, WAL corruption,
//	                                   fsync faults)
//	ringchaos -elasticity -seeds 1:8   elasticity schedules: live scheme
//	                                   conversions and join/leave resizes
//	                                   blended into the fault mix
//	ringchaos -elasticity -convbug -seed 5
//	                                   inject the ack-before-journal
//	                                   transition bug (the checker must
//	                                   catch it)
//	ringchaos -seeds 1:20 -shrink=false -v
//	ringchaos -seeds 1:500 -dump out/    write failure artifacts to out/
//
// On a violation the driver greedily shrinks the failing schedule to a
// locally minimal one, prints both, and exits nonzero. With -dump it
// also writes, per failing seed, the full operation history, the
// original and shrunk schedules, and the repro command lines — the
// files the nightly CI sweep uploads as artifacts.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"ring/internal/linearize"
	"ring/internal/sim"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main without os.Exit, so tests can drive it.
func run(args []string, out, errw io.Writer) int {
	fs := flag.NewFlagSet("ringchaos", flag.ContinueOnError)
	fs.SetOutput(errw)
	seed := fs.Int64("seed", 1, "seed for a single run")
	seeds := fs.String("seeds", "", "inclusive seed range lo:hi (overrides -seed)")
	schedule := fs.String("schedule", "", "explicit nemesis schedule (overrides the generated one)")
	bug := fs.Bool("bug", false, "inject the ack-before-quorum bug (validates the checker)")
	convbug := fs.Bool("convbug", false, "inject the ack-before-journal transition bug (validates the checker)")
	durable := fs.Bool("durable", false, "disk fault plane: durable nodes, crash-recovery schedules")
	elasticity := fs.Bool("elasticity", false, "elasticity schedules: live conversions and join/leave resizes in the fault mix")
	shrink := fs.Bool("shrink", true, "greedily shrink failing schedules")
	active := fs.Duration("active", 0, "nemesis window in virtual time (default 40ms)")
	budget := fs.Int("budget", 0, "linearizability search budget per key (default 2e6 states)")
	dump := fs.String("dump", "", "directory to write failure artifacts into (history, schedules, repro)")
	verbose := fs.Bool("v", false, "print per-seed stats for passing runs too")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	lo, hi := *seed, *seed
	if *seeds != "" {
		var err error
		lo, hi, err = parseSeedRange(*seeds)
		if err != nil {
			fmt.Fprintf(errw, "ringchaos: %v\n", err)
			return 2
		}
	}

	var explicit *sim.Schedule
	if *schedule != "" {
		s, err := sim.ParseSchedule(*schedule)
		if err != nil {
			fmt.Fprintf(errw, "ringchaos: %v\n", err)
			return 2
		}
		explicit = &s
	}

	failures := 0
	start := time.Now()
	for s := lo; s <= hi; s++ {
		spec := sim.ChaosRunSpec{
			Seed:          s,
			Schedule:      explicit,
			UnsafeAck:     *bug,
			UnsafeConvert: *convbug,
			Durable:       *durable,
			Elasticity:    *elasticity,
			Active:        *active,
			CheckBudget:   *budget,
		}
		r := sim.RunChaos(spec)
		switch r.Check.Verdict {
		case linearize.Linearizable:
			if *verbose {
				fmt.Fprintf(out, "seed %d: ok (%d ops, %d abandoned, %d converts/resizes acked, faults %+v)\n",
					s, len(r.History), r.Abandoned, r.ElasticAcked, r.Faults)
			}
		case linearize.Exhausted:
			// Not a verdict either way; report so the budget can be raised.
			fmt.Fprintf(out, "seed %d: INCONCLUSIVE on key %q (search budget exhausted; re-run with -budget)\n",
				s, r.Check.Key)
		case linearize.Violation:
			failures++
			fmt.Fprintf(out, "seed %d: VIOLATION\n%s\n", s, indent(r.Check.String()))
			fmt.Fprintf(out, "  schedule: %s\n", r.Schedule)
			repro := fmt.Sprintf("ringchaos -seed %d", s)
			if *bug {
				repro += " -bug"
			}
			if *convbug {
				repro += " -convbug"
			}
			if *durable {
				repro += " -durable"
			}
			if *elasticity {
				repro += " -elasticity"
			}
			if explicit != nil {
				repro += fmt.Sprintf(" -schedule '%s'", explicit)
			}
			fmt.Fprintf(out, "  repro: %s\n", repro)
			var repros strings.Builder
			fmt.Fprintf(&repros, "%s\n", repro)
			if *shrink && explicit == nil {
				shrunk, runs := sim.ShrinkSchedule(spec, r.Schedule)
				fmt.Fprintf(out, "  shrunk (%d -> %d steps, %d runs): %s\n",
					len(r.Schedule.Steps), len(shrunk.Steps), runs, shrunk)
				fmt.Fprintf(out, "  repro (shrunk): %s -schedule '%s'\n", repro, shrunk)
				fmt.Fprintf(&repros, "%s -schedule '%s'\n", repro, shrunk)
			}
			if *dump != "" {
				if err := dumpFailure(*dump, s, r, repros.String()); err != nil {
					fmt.Fprintf(errw, "ringchaos: writing artifacts: %v\n", err)
					return 2
				}
			}
		}
	}

	n := hi - lo + 1
	if failures > 0 {
		fmt.Fprintf(out, "ringchaos: %d/%d seeds FAILED (%.1fs)\n", failures, n, time.Since(start).Seconds())
		return 1
	}
	fmt.Fprintf(out, "ringchaos: %d seeds ok (%.1fs)\n", n, time.Since(start).Seconds())
	return 0
}

// dumpFailure writes a failing seed's artifacts: the full operation
// history, the (generated) schedule, and the repro command lines.
// These are what the nightly sweep uploads so a red run is actionable
// without re-running anything.
func dumpFailure(dir string, seed int64, r sim.ChaosRunResult, repros string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	var hist strings.Builder
	for _, op := range r.History {
		fmt.Fprintf(&hist, "%s\n", op)
	}
	files := map[string]string{
		fmt.Sprintf("seed-%d.history.txt", seed):  hist.String(),
		fmt.Sprintf("seed-%d.schedule.txt", seed): r.Schedule.String() + "\n",
		fmt.Sprintf("seed-%d.repro.txt", seed):    repros,
		fmt.Sprintf("seed-%d.check.txt", seed):    r.Check.String(),
	}
	for name, content := range files {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			return err
		}
	}
	return nil
}

// parseSeedRange parses "lo:hi" (inclusive).
func parseSeedRange(s string) (int64, int64, error) {
	lo, hi, ok := strings.Cut(s, ":")
	if !ok {
		return 0, 0, fmt.Errorf("bad -seeds %q: want lo:hi", s)
	}
	l, err := strconv.ParseInt(lo, 10, 64)
	if err != nil {
		return 0, 0, fmt.Errorf("bad -seeds %q: %v", s, err)
	}
	h, err := strconv.ParseInt(hi, 10, 64)
	if err != nil {
		return 0, 0, fmt.Errorf("bad -seeds %q: %v", s, err)
	}
	if h < l {
		return 0, 0, fmt.Errorf("bad -seeds %q: hi < lo", s)
	}
	return l, h, nil
}

// indent prefixes every line with two spaces.
func indent(s string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	for i, l := range lines {
		lines[i] = "  " + l
	}
	return strings.Join(lines, "\n")
}
