package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestCleanSeedPasses(t *testing.T) {
	var out, errw strings.Builder
	if code := run([]string{"-seed", "1"}, &out, &errw); code != 0 {
		t.Fatalf("exit %d\n%s%s", code, out.String(), errw.String())
	}
	if !strings.Contains(out.String(), "1 seeds ok") {
		t.Fatalf("unexpected output:\n%s", out.String())
	}
}

func TestSeedRange(t *testing.T) {
	var out, errw strings.Builder
	if code := run([]string{"-seeds", "1:3", "-v"}, &out, &errw); code != 0 {
		t.Fatalf("exit %d\n%s%s", code, out.String(), errw.String())
	}
	if !strings.Contains(out.String(), "3 seeds ok") {
		t.Fatalf("unexpected output:\n%s", out.String())
	}
}

// TestInjectedBugCaughtAndShrunk is the driver-level acceptance check:
// with -bug, some seed in a small band must fail, the output must
// carry a repro command, and the shrunk schedule it prints must itself
// reproduce the violation when replayed via -schedule.
func TestInjectedBugCaughtAndShrunk(t *testing.T) {
	var out, errw strings.Builder
	code := run([]string{"-seeds", "1:5", "-bug"}, &out, &errw)
	if code != 1 {
		t.Fatalf("expected exit 1 with injected bug, got %d\n%s%s", code, out.String(), errw.String())
	}
	text := out.String()
	if !strings.Contains(text, "VIOLATION") || !strings.Contains(text, "repro: ringchaos -seed") {
		t.Fatalf("missing violation/repro output:\n%s", text)
	}
	// Extract the shrunk replay command and run it.
	i := strings.Index(text, "repro (shrunk): ")
	if i < 0 {
		t.Fatalf("no shrunk repro line:\n%s", text)
	}
	line := text[i+len("repro (shrunk): "):]
	line = line[:strings.IndexByte(line, '\n')]
	// Form: ringchaos -seed N -bug -schedule '...'
	parts := strings.SplitN(line, "-schedule '", 2)
	if len(parts) != 2 {
		t.Fatalf("malformed shrunk repro %q", line)
	}
	sched := strings.TrimSuffix(strings.TrimSpace(parts[1]), "'")
	seedArgs := strings.Fields(parts[0])[1:] // drop "ringchaos"
	args := append(seedArgs, "-schedule", sched)
	var out2, errw2 strings.Builder
	if code := run(args, &out2, &errw2); code != 1 {
		t.Fatalf("shrunk repro %q did not reproduce (exit %d)\n%s%s", line, code, out2.String(), errw2.String())
	}
}

// TestDumpWritesArtifacts pins the -dump contract the nightly workflow
// relies on: every failing seed leaves history, schedule, repro, and
// check files behind for artifact upload.
func TestDumpWritesArtifacts(t *testing.T) {
	dir := t.TempDir()
	var out, errw strings.Builder
	if code := run([]string{"-seeds", "1:5", "-bug", "-dump", dir}, &out, &errw); code != 1 {
		t.Fatalf("expected exit 1 with injected bug, got %d\n%s%s", code, out.String(), errw.String())
	}
	// Find the failing seed from the output and check its files.
	i := strings.Index(out.String(), "seed ")
	text := out.String()[i:]
	seed := strings.Fields(strings.TrimSuffix(text[:strings.IndexByte(text, ':')], ":"))[1]
	for _, suffix := range []string{"history.txt", "schedule.txt", "repro.txt", "check.txt"} {
		name := filepath.Join(dir, "seed-"+seed+"."+suffix)
		b, err := os.ReadFile(name)
		if err != nil {
			t.Fatalf("missing artifact: %v", err)
		}
		if len(b) == 0 {
			t.Fatalf("artifact %s is empty", name)
		}
	}
}

// TestDurableSeedsPass sweeps a small band of generated crash-recovery
// schedules over the disk fault plane: recovered nodes must keep every
// acknowledged write and the history must stay linearizable.
func TestDurableSeedsPass(t *testing.T) {
	var out, errw strings.Builder
	if code := run([]string{"-durable", "-seeds", "1:3"}, &out, &errw); code != 0 {
		t.Fatalf("exit %d\n%s%s", code, out.String(), errw.String())
	}
	if !strings.Contains(out.String(), "3 seeds ok") {
		t.Fatalf("unexpected output:\n%s", out.String())
	}
}

// TestDurableReproSchedules pins one-line repro commands for each
// disk-fault recovery path as regression tests: kill -9 leaving a torn
// WAL tail, a CRC-detected bit flip in the WAL, and a disk whose
// fsyncs fail (the node must crash-stop, then recover once healed).
// Each must recover into a linearizable history.
func TestDurableReproSchedules(t *testing.T) {
	for _, tc := range []struct{ name, schedule string }{
		{"torn-tail", "10ms:kill:1;16ms:restart:1"},
		{"crc-corruption", "10ms:kill:1;12ms:corrupt:1;16ms:restart:1"},
		{"fsyncgate", "8ms:fsyncerr:2;14ms:fsyncok:2;14ms:restart:2"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			var out, errw strings.Builder
			args := []string{"-durable", "-seed", "2", "-schedule", tc.schedule}
			if code := run(args, &out, &errw); code != 0 {
				t.Fatalf("repro `ringchaos %s` failed (exit %d)\n%s%s",
					strings.Join(args, " "), code, out.String(), errw.String())
			}
		})
	}
}

func TestBadFlags(t *testing.T) {
	var out, errw strings.Builder
	if code := run([]string{"-seeds", "9:1"}, &out, &errw); code != 2 {
		t.Fatalf("expected exit 2 for bad range, got %d", code)
	}
	if code := run([]string{"-schedule", "1ms:frobnicate"}, &out, &errw); code != 2 {
		t.Fatalf("expected exit 2 for bad schedule, got %d", code)
	}
}
