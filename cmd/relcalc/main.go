// Command relcalc evaluates the fault-resilience models of Appendix A:
// annual reliability (Figure 2) and interval availability (Figure 16)
// of RS and Stretched Reed-Solomon codes, for configurable failure
// rates and data volumes.
//
//	relcalc -mode reliability -lambda 12 -data 600GiB
//	relcalc -mode availability
//	relcalc -mode single -k 3 -m 2 -s 6
package main

import (
	"flag"
	"fmt"
	"log"
	"strconv"
	"strings"

	"ring/internal/experiments"
	"ring/internal/reliability"
	"ring/internal/srs"
)

func main() {
	mode := flag.String("mode", "reliability", "reliability | availability | single")
	lambda := flag.Float64("lambda", 12, "per-node failure rate, per year")
	data := flag.String("data", "600GiB", "data set size C (e.g. 600GiB)")
	netBW := flag.Float64("net-bw", 5e9, "recovery network bandwidth, bytes/sec")
	comp := flag.Float64("comp", 1e-9, "erasure compute seconds per byte")
	k := flag.Int("k", 3, "single mode: RS data blocks")
	m := flag.Int("m", 2, "single mode: RS parity blocks")
	s := flag.Int("s", 3, "single mode: stretch factor")
	flag.Parse()

	bytes, err := parseSize(*data)
	if err != nil {
		log.Fatalf("relcalc: %v", err)
	}
	params := reliability.Params{
		Lambda:         *lambda,
		DataBytes:      bytes,
		NetBytesPerSec: *netBW,
		CompSecPerByte: *comp,
	}
	fmt.Printf("params: lambda=%.2f/year  C=%s  mu=%.0f/year (T_reconst=%.0fs)\n\n",
		params.Lambda, *data, params.Mu(), 365.25*24*3600/params.Mu())

	switch *mode {
	case "reliability":
		fmt.Print(experiments.FormatFig2(experiments.Fig2Reliability(params)))
	case "availability":
		fmt.Print(experiments.FormatFig16(experiments.Fig16Availability(params)))
	case "single":
		layout, err := srs.NewLayout(*k, *m, *s)
		if err != nil {
			log.Fatalf("relcalc: %v", err)
		}
		chain := reliability.SRSChain(layout, params)
		r := chain.Reliability(1)
		av := chain.Repairable(params.Mu()).IntervalAvailability(1)
		fmt.Printf("%s:\n", layout)
		fmt.Printf("  annual reliability:    %.10f (%.2f nines)\n", r, reliability.Nines(r))
		fmt.Printf("  interval availability: %.10f (%.2f nines)\n", av, reliability.Nines(av))
		fmt.Printf("  storage overhead:      %.2fx\n", layout.StorageOverhead())
		fmt.Printf("  guaranteed tolerance:  %d failures (up to %d when blocks are independent)\n",
			layout.M, layout.MaxTolerated())
		for i := 1; i <= layout.MaxTolerated(); i++ {
			fmt.Printf("  P(survive %d simultaneous failures) = %.4f\n", i, layout.TolerationProbability(i))
		}
	default:
		log.Fatalf("relcalc: unknown mode %q", *mode)
	}
}

func parseSize(s string) (float64, error) {
	s = strings.TrimSpace(s)
	mult := 1.0
	for suffix, m := range map[string]float64{
		"KiB": 1 << 10, "MiB": 1 << 20, "GiB": 1 << 30, "TiB": 1 << 40,
	} {
		if strings.HasSuffix(s, suffix) {
			mult = m
			s = strings.TrimSuffix(s, suffix)
			break
		}
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("bad size %q", s)
	}
	return v * mult, nil
}
