package main

import "testing"

func TestParseSize(t *testing.T) {
	cases := []struct {
		in   string
		want float64
	}{
		{"1024", 1024},
		{"4KiB", 4096},
		{"2MiB", 2 << 20},
		{"600GiB", 600 * (1 << 30)},
		{"1TiB", 1 << 40},
		{" 8KiB ", 8192},
	}
	for _, c := range cases {
		got, err := parseSize(c.in)
		if err != nil || got != c.want {
			t.Errorf("parseSize(%q) = %v, %v; want %v", c.in, got, err, c.want)
		}
	}
	for _, bad := range []string{"", "GiB", "12QiB", "x"} {
		if _, err := parseSize(bad); err == nil {
			t.Errorf("parseSize(%q) accepted", bad)
		}
	}
}
