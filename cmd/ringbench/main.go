// Command ringbench regenerates the tables and figures of the paper's
// evaluation section. Every experiment prints the same rows or series
// the paper reports; EXPERIMENTS.md records the paper-vs-measured
// comparison.
//
// Usage:
//
//	ringbench -experiment table1|fig2|fig7a|fig7c|fig8|fig9|fig10|fig11|fig12|fig13|fig16|ablation|all
//	          [-reps N] [-burst 50ms]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"ring/internal/experiments"
	"ring/internal/reliability"
)

func main() {
	exp := flag.String("experiment", "all", "experiment to run (table1, fig2, fig7a, fig7c, fig8, fig9, fig10, fig11, fig12, fig13, fig16, ablation, all)")
	reps := flag.Int("reps", 31, "samples per latency point")
	burst := flag.Duration("burst", 50*time.Millisecond, "virtual-time burst window for throughput measurements")
	flag.Parse()

	runners := map[string]func(int, time.Duration) error{
		"table1":   runTable1,
		"fig2":     runFig2,
		"fig7a":    runFig7,
		"fig7c":    runFig7c,
		"fig8":     runFig8,
		"fig9":     runFig9,
		"fig10":    runFig10,
		"fig11":    runFig11,
		"fig12":    runFig12,
		"fig13":    runFig13,
		"fig16":    runFig16,
		"ablation": runAblations,
	}
	order := []string{"table1", "fig2", "fig7a", "fig7c", "fig8", "fig9", "fig10", "fig11", "fig12", "fig13", "fig16", "ablation"}

	run := func(name string) {
		fmt.Printf("==> %s\n", name)
		start := time.Now()
		if err := runners[name](*reps, *burst); err != nil {
			fmt.Fprintf(os.Stderr, "ringbench: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Printf("    (%.1fs)\n\n", time.Since(start).Seconds())
	}
	if *exp == "all" {
		for _, name := range order {
			run(name)
		}
		return
	}
	if _, ok := runners[*exp]; !ok {
		fmt.Fprintf(os.Stderr, "ringbench: unknown experiment %q (want %s, or all)\n",
			*exp, strings.Join(order, ", "))
		os.Exit(2)
	}
	run(*exp)
}

func runTable1(_ int, burst time.Duration) error {
	rows, err := experiments.Table1(burst)
	if err != nil {
		return err
	}
	fmt.Println("Table 1 (Section 1): storage scheme trade-offs, normalized to Simple")
	fmt.Printf("%-10s %-12s %12s %16s %14s\n", "scheme", "reliability", "put latency", "put throughput", "storage cost")
	for _, r := range rows {
		rel := "None"
		if r.Tolerated > 0 {
			rel = fmt.Sprintf("%d failures", r.Tolerated)
		}
		fmt.Printf("%-10s %-12s %11.2fx %15.2fx %13.2fx\n",
			r.Scheme, rel, r.PutLatencyX, r.PutThroughputX, r.StorageCostX)
	}
	return nil
}

func runFig2(_ int, _ time.Duration) error {
	fmt.Print(experiments.FormatFig2(experiments.Fig2Reliability(reliability.Params{})))
	return nil
}

func runFig7(reps int, _ time.Duration) error {
	put, err := experiments.Fig7Put(reps)
	if err != nil {
		return err
	}
	get, err := experiments.Fig7Get(reps)
	if err != nil {
		return err
	}
	fmt.Print(experiments.FormatSeries("Figure 7(a,b): put latency by object size (+ get)", "µs", append(put, get)))
	return nil
}

func runFig7c(_ int, _ time.Duration) error {
	fmt.Print(experiments.FormatSeries("Figure 7(c): baseline put/get latency", "µs", experiments.Fig7c()))
	return nil
}

func runFig8(reps int, _ time.Duration) error {
	series, err := experiments.Fig8Move(reps)
	if err != nil {
		return err
	}
	fmt.Print(experiments.FormatSeries("Figure 8: move latency by destination memgest", "µs", series))
	return nil
}

func runFig9(_ int, burst time.Duration) error {
	samples, err := experiments.Fig9(4, 400e3, burst)
	if err != nil {
		return err
	}
	fmt.Println("Figure 9: put throughput ramp, 1 KiB values, one new 400K req/s client per second")
	fmt.Printf("%-10s", "scheme")
	for s := 1; s <= 4; s++ {
		fmt.Printf(" %9s", fmt.Sprintf("%dclient", s))
	}
	fmt.Println("   (requests/sec)")
	last := ""
	for _, s := range samples {
		if s.Label != last {
			if last != "" {
				fmt.Println()
			}
			fmt.Printf("%-10s", s.Label)
			last = s.Label
		}
		fmt.Printf(" %9.0f", s.ReqsPerSec)
	}
	fmt.Println()
	return nil
}

func runFig10(_ int, _ time.Duration) error {
	fmt.Print(experiments.FormatFig10(experiments.Fig10Pricing()))
	return nil
}

func runFig11(_ int, burst time.Duration) error {
	rows, err := experiments.Fig11(burst)
	if err != nil {
		return err
	}
	fmt.Println("Figure 11: saturated throughput by (get:put) mix, Zipfian keys, 1 KiB values")
	fmt.Printf("%-8s", "scheme")
	last := ""
	printed := false
	for _, r := range rows {
		if r.Label != last {
			if last != "" {
				fmt.Println()
			}
			fmt.Printf("%-8s", r.Label)
			last = r.Label
			printed = true
		}
		fmt.Printf(" %s=%8.0f", r.Mix, r.ReqsPerSec)
	}
	if printed {
		fmt.Println()
	}
	return nil
}

func runFig12(_ int, _ time.Duration) error {
	pts, err := experiments.Fig12Recovery(nil)
	if err != nil {
		return err
	}
	fmt.Println("Figure 12: coordinator metadata-recovery latency vs metadata size")
	fmt.Printf("%12s %10s %12s\n", "metadata", "keys", "recovery")
	for _, p := range pts {
		fmt.Printf("%9.0fKiB %10d %9.0fµs\n",
			float64(p.MetaBytes)/1024, p.Keys, float64(p.Latency)/float64(time.Microsecond))
	}
	return nil
}

func runFig13(_ int, _ time.Duration) error {
	pts, err := experiments.Fig13BlockRecovery(nil)
	if err != nil {
		return err
	}
	fmt.Println("Figure 13: block recovery latency vs recovered block size")
	fmt.Printf("%-8s %12s %12s\n", "scheme", "block", "latency")
	for _, p := range pts {
		fmt.Printf("%-8s %9.1fKiB %9.1fµs\n",
			p.Scheme, float64(p.BlockSize)/1024, float64(p.Latency)/float64(time.Microsecond))
	}
	return nil
}

func runFig16(_ int, _ time.Duration) error {
	fmt.Print(experiments.FormatFig16(experiments.Fig16Availability(reliability.Params{})))
	return nil
}

func runAblations(_ int, _ time.Duration) error {
	fmt.Println("Ablations (design choices):")
	mv, err := experiments.AblationMoveVsMigrate(2048)
	if err != nil {
		return err
	}
	fmt.Printf("  move vs migrate (2 KiB, REP1->SRS32): move %d B / %.1fµs, client migrate %d B / %.1fµs\n",
		mv.MoveWireBytes, float64(mv.MoveLatency)/1e3,
		mv.MigrateWireBytes, float64(mv.MigrateLatency)/1e3)
	q, err := experiments.AblationQuorumVsSync(4, 1024)
	if err != nil {
		return err
	}
	fmt.Printf("  quorum vs sync Rep(4,3): quorum %.2fµs (tolerates %d unavailable), sync %.2fµs (tolerates %d)\n",
		float64(q.QuorumPut)/1e3, q.QuorumTolerates, float64(q.SyncPut)/1e3, q.SyncTolerates)
	bal := experiments.AblationBalance()
	fmt.Printf("  memgest-group balance (max/mean memory): single group %.3f, rotated %.3f\n",
		bal.SingleGroup, bal.Rotated)
	return nil
}
