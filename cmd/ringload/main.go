// Command ringload is the YCSB-style load generator for live Ring
// clusters over TCP: it drives a deployment started by cmd/ringd (or
// scripts/cluster.sh) with the paper's workloads and reports ops/sec
// and exact p50/p99/p999 latency percentiles.
//
// Two offered-load models:
//
//   - closed loop (-mode closed): -clients × -depth synchronous
//     streams, each issuing the next operation as soon as the previous
//     completes — the saturation-throughput experiments (Table 1).
//   - open loop (-mode open): operations arrive on a fixed schedule at
//     -rate ops/sec regardless of completions, and latency is measured
//     from the scheduled arrival, so queueing delay under overload is
//     visible — the latency-under-load experiments (Figures 9, 11).
//
// Keys follow a Zipfian (-dist zipfian, YCSB theta 0.99) or uniform
// popularity over -keys items with a -mix get:put ratio, or replay the
// statistics of a named storage trace (-trace Financial1, scaled to
// the -keys footprint). Deployments sharded with ringd -groups G are
// driven group-aware: every key routes to its group's fabric with the
// same core.GroupOf mapping the servers use.
//
// With -bench-out the run is appended to the machine-checked BENCH
// trajectory: -suite measures the GF kernels plus one closed-loop run
// against the replicated and erasure-coded memgests, writes
// BENCH_<issue>.json, and — when a previous BENCH_*.json exists in
// -prev-dir — fails (exit 1) on any >-tolerance regression.
//
// -convert adds the elasticity row: the same closed-loop workload
// measured while a background bulk conversion continuously re-encodes
// the whole key space back and forth between the replicated and the
// erasure-coded memgest — the cost of live scheme transitions under
// load, reported as scheme "<rep-scheme>+bulkconv".
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"ring/internal/benchjson"
	"ring/internal/client"
	"ring/internal/core"
	"ring/internal/proto"
	"ring/internal/traces"
	"ring/internal/transport"
	"ring/internal/workload"
)

type config struct {
	nodes     string
	groups    int
	memgest   int
	mode      string
	clients   int
	depth     int
	rate      float64
	duration  time.Duration
	ops       int
	keys      int
	value     int
	mix       string
	dist      string
	theta     float64
	trace     string
	seed      int64
	timeout   time.Duration
	retries   int
	preload   bool
	scheme    string
	suite     bool
	convert   bool
	repMG     int
	srsMG     int
	repScheme string
	srsScheme string
	benchOut  string
	merge     bool
	kernels   bool
	issue     int
	prevDir   string
	tolerance float64
	kernelB   int
}

func main() {
	var c config
	flag.StringVar(&c.nodes, "nodes", "", "comma-separated TCP addresses of all cluster nodes, in node-ID order (ringd -launch prints this as RING_NODES)")
	flag.IntVar(&c.groups, "groups", 1, "memgest groups of the deployment (must match ringd -groups)")
	flag.IntVar(&c.memgest, "memgest", 0, "memgest ID to drive (0 = cluster default)")
	flag.StringVar(&c.mode, "mode", "closed", "offered-load model: closed or open")
	flag.IntVar(&c.clients, "clients", 4, "closed-loop client count")
	flag.IntVar(&c.depth, "depth", 4, "concurrent streams per client (total concurrency = clients*depth)")
	flag.Float64Var(&c.rate, "rate", 2000, "open-loop offered load in ops/sec")
	flag.DurationVar(&c.duration, "duration", 5*time.Second, "measurement duration")
	flag.IntVar(&c.ops, "ops", 0, "operation cap (0 = run for -duration)")
	flag.IntVar(&c.keys, "keys", 1024, "key-space size")
	flag.IntVar(&c.value, "value", 1024, "value size in bytes")
	flag.StringVar(&c.mix, "mix", "50:50", "get:put ratio, e.g. 95:5")
	flag.StringVar(&c.dist, "dist", "zipfian", "key popularity: zipfian or uniform")
	flag.Float64Var(&c.theta, "theta", workload.DefaultTheta, "zipfian theta")
	flag.StringVar(&c.trace, "trace", "", "replay a named trace's statistics (Financial1, Financial2, WebSearch1..3) instead of -mix/-value")
	flag.Int64Var(&c.seed, "seed", 1, "workload seed")
	flag.DurationVar(&c.timeout, "timeout", 3*time.Second, "per-attempt request timeout")
	flag.IntVar(&c.retries, "retries", 8, "request retry budget")
	flag.BoolVar(&c.preload, "preload", true, "write the whole key space once before measuring")
	flag.StringVar(&c.scheme, "scheme", "", "scheme label for reports (default memgest<id>)")
	flag.BoolVar(&c.suite, "suite", false, "BENCH suite: measure GF kernels plus closed-loop runs on the rep and srs memgests")
	flag.BoolVar(&c.convert, "convert", false, "add the convert-under-load row: closed-loop ops on -rep-memgest while a background bulk conversion churns the key space between the rep and srs memgests")
	flag.IntVar(&c.repMG, "rep-memgest", 1, "suite: replicated memgest ID")
	flag.IntVar(&c.srsMG, "srs-memgest", 2, "suite: erasure-coded memgest ID")
	flag.StringVar(&c.repScheme, "rep-scheme", "rep3", "suite: scheme label of -rep-memgest")
	flag.StringVar(&c.srsScheme, "srs-scheme", "srs3.2", "suite: scheme label of -srs-memgest")
	flag.StringVar(&c.benchOut, "bench-out", "", "write a benchjson result to this path (e.g. BENCH_7.json)")
	flag.BoolVar(&c.merge, "bench-merge", false, "append this run's cluster rows to an existing -bench-out file (multi-boot trajectories, e.g. volatile + durable passes)")
	flag.BoolVar(&c.kernels, "kernels", true, "suite: measure the GF kernels (disable on merge passes that only add cluster rows)")
	flag.IntVar(&c.issue, "issue", 7, "issue number recorded in -bench-out")
	flag.StringVar(&c.prevDir, "prev-dir", "", "directory holding committed BENCH_*.json to gate against (empty = no gate)")
	flag.Float64Var(&c.tolerance, "tolerance", 0.10, "fractional regression tolerance for the gate")
	flag.IntVar(&c.kernelB, "kernel-bytes", 4096, "buffer size for the suite's GF kernel measurements")
	flag.Parse()

	if err := run(c); err != nil {
		log.Fatalf("ringload: %v", err)
	}
}

func run(c config) error {
	result := benchjson.Result{Schema: benchjson.Schema, Issue: c.issue, Host: benchjson.CurrentHost()}

	if c.suite && c.kernels {
		fmt.Printf("== GF kernels (%d B buffers) ==\n", c.kernelB)
		result.Kernels = benchjson.MeasureGFKernels(c.kernelB)
		for _, k := range result.Kernels {
			fmt.Printf("%-12s %8.2f GB/s  (byte-wise %6.2f GB/s, %.2fx)\n", k.Name, k.GBps, k.BaseGBps, k.Speedup)
		}
		fmt.Printf("geomean speedup: %.2fx\n", benchjson.GeomeanSpeedup(result.Kernels))
	}

	if c.nodes != "" {
		clients, err := dialGroups(c)
		if err != nil {
			return err
		}
		defer func() {
			for _, cl := range clients {
				cl.Close()
			}
		}()
		runs := []struct {
			mg     int
			scheme string
		}{{c.memgest, c.scheme}}
		if c.suite {
			runs = []struct {
				mg     int
				scheme string
			}{{c.repMG, c.repScheme}, {c.srsMG, c.srsScheme}}
		}
		for _, r := range runs {
			row, err := measure(c, clients, proto.MemgestID(r.mg), r.scheme)
			if err != nil {
				return err
			}
			result.Cluster = append(result.Cluster, row)
			fmt.Printf("== %s/%s ==\n%d ops in %s: %.0f ops/sec, p50 %.0fus p99 %.0fus p99.9 %.0fus\n",
				row.Scheme, row.Mode, row.Ops, c.duration, row.OpsPerSec, row.P50us, row.P99us, row.P999us)
		}
		if c.convert {
			row, churned, err := measureConvert(c, clients)
			if err != nil {
				return err
			}
			result.Cluster = append(result.Cluster, row)
			fmt.Printf("== %s/%s ==\n%d ops in %s: %.0f ops/sec, p50 %.0fus p99 %.0fus p99.9 %.0fus (%d keys bulk-converted behind the workload)\n",
				row.Scheme, row.Mode, row.Ops, c.duration, row.OpsPerSec, row.P50us, row.P99us, row.P999us, churned)
		}
	} else if !c.suite {
		return fmt.Errorf("nothing to do: need -nodes and/or -suite")
	}

	if c.benchOut != "" {
		if c.merge {
			if old, err := benchjson.Read(c.benchOut); err == nil {
				// Earlier passes' rows come first; kernels survive from the
				// pass that measured them.
				if len(result.Kernels) == 0 {
					result.Kernels = old.Kernels
				}
				result.Cluster = append(old.Cluster, result.Cluster...)
			} else if !os.IsNotExist(err) {
				return err
			}
		}
		if err := benchjson.Write(c.benchOut, result); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", c.benchOut)
	}
	if c.prevDir != "" {
		prev, path, ok, err := benchjson.FindPrevious(c.prevDir, c.issue)
		if err != nil {
			return err
		}
		if !ok {
			fmt.Printf("bench gate: no previous BENCH_*.json in %s — seeding the trajectory\n", c.prevDir)
			return nil
		}
		if regs := benchjson.Compare(prev, result, c.tolerance); len(regs) > 0 {
			for _, r := range regs {
				fmt.Fprintf(os.Stderr, "bench gate REGRESSION vs %s: %s\n", path, r)
			}
			return fmt.Errorf("%d regression(s) beyond %.0f%% vs %s", len(regs), c.tolerance*100, path)
		}
		fmt.Printf("bench gate: no regressions beyond %.0f%% vs %s\n", c.tolerance*100, path)
	}
	return nil
}

// dialGroups connects one client per memgest group. Group g's fabric
// maps every node address with its port shifted by g, mirroring ringd.
// Dialing retries for a few seconds so the generator can start
// alongside a cluster that is still booting.
func dialGroups(c config) ([]*client.Client, error) {
	addrs := strings.Split(c.nodes, ",")
	if c.groups < 1 {
		c.groups = 1
	}
	bootstrap := make([]string, len(addrs))
	for i := range addrs {
		bootstrap[i] = core.NodeAddr(proto.NodeID(i))
	}
	clients := make([]*client.Client, c.groups)
	for g := 0; g < c.groups; g++ {
		fabric := transport.NewTCPFabric()
		for i, a := range addrs {
			ga, err := offsetPort(strings.TrimSpace(a), g)
			if err != nil {
				return nil, err
			}
			fabric.Map(core.NodeAddr(proto.NodeID(i)), ga)
		}
		var cl *client.Client
		var err error
		deadline := time.Now().Add(10 * time.Second)
		for {
			cl, err = client.Dial(fabric, bootstrap, client.Options{Timeout: c.timeout, Retries: c.retries})
			if err == nil || time.Now().After(deadline) {
				break
			}
			time.Sleep(200 * time.Millisecond)
		}
		if err != nil {
			return nil, fmt.Errorf("dial group %d: %w", g, err)
		}
		clients[g] = cl
	}
	return clients, nil
}

// op is one scheduled request of the run.
type op struct {
	put   bool
	key   string
	value []byte
	at    time.Duration // open loop: offset of the scheduled arrival
}

// plan builds the request stream and the value buffers for one run.
func plan(c config, n int) ([]op, error) {
	mix, err := parseMix(c.mix)
	if err != nil {
		return nil, err
	}
	if c.trace != "" {
		tr, ok := namedTrace(c.trace)
		if !ok {
			return nil, fmt.Errorf("unknown trace %q", c.trace)
		}
		// Scale the trace's footprint to the requested key space; the
		// write fraction and size distribution survive the scaling.
		tr.FootprintBytes = int64(c.keys) * int64(tr.AvgReqBytes)
		ops := make([]op, n)
		for i, t := range traces.Synthesize(tr, n, c.seed) {
			ops[i] = op{put: t.Write, key: t.Key}
			if t.Write {
				ops[i].value = make([]byte, t.Size)
			}
		}
		return ops, nil
	}
	var keys workload.KeyChooser
	switch c.dist {
	case "zipfian":
		keys = workload.NewZipfian(c.keys, c.theta, c.seed)
	case "uniform":
		keys = workload.NewUniform(c.keys, c.seed)
	default:
		return nil, fmt.Errorf("unknown distribution %q", c.dist)
	}
	gen := workload.NewGenerator(keys, mix, c.seed)
	gen.SetValueSize(c.value)
	ops := make([]op, n)
	for i := range ops {
		w := gen.Next()
		ops[i] = op{put: w.Kind == workload.OpPut, key: w.Key, value: w.Value}
	}
	return ops, nil
}

// measure drives one load run against the cluster and reports it as a
// trajectory row.
func measure(c config, clients []*client.Client, mg proto.MemgestID, scheme string) (benchjson.Cluster, error) {
	if scheme == "" {
		scheme = fmt.Sprintf("memgest%d", mg)
	}
	n := c.ops
	if n <= 0 {
		if c.mode == "open" {
			n = int(c.rate * c.duration.Seconds())
		} else {
			// Closed loop stops on the duration; the plan just has to be
			// long enough that no worker wraps visibly often.
			n = 1 << 16
		}
	}
	ops, err := plan(c, n)
	if err != nil {
		return benchjson.Cluster{}, err
	}
	if c.preload {
		if err := preloadKeys(c, clients, mg, ops); err != nil {
			return benchjson.Cluster{}, err
		}
	}

	doOp := func(o op) error {
		cl := clients[core.GroupOf(o.key, len(clients))]
		if o.put {
			_, err := cl.PutIn(o.key, o.value, mg)
			return err
		}
		_, _, err := cl.Get(o.key)
		if err == client.ErrNotFound {
			return nil // a miss is a completed operation
		}
		return err
	}

	var lats []time.Duration
	var elapsed time.Duration
	var errs int64
	switch c.mode {
	case "closed":
		lats, elapsed, errs = runClosed(c, ops, doOp)
	case "open":
		lats, elapsed, errs = runOpen(c, ops, doOp)
	default:
		return benchjson.Cluster{}, fmt.Errorf("unknown mode %q", c.mode)
	}
	if errs > 0 {
		return benchjson.Cluster{}, fmt.Errorf("%s/%s: %d of %d operations failed", scheme, c.mode, errs, len(lats))
	}
	if len(lats) == 0 {
		return benchjson.Cluster{}, fmt.Errorf("%s/%s: no operations completed", scheme, c.mode)
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	mixLabel := c.mix
	if c.trace != "" {
		mixLabel = "trace:" + c.trace
	}
	return benchjson.Cluster{
		Scheme:     scheme,
		Mode:       c.mode,
		Procs:      len(strings.Split(c.nodes, ",")),
		Groups:     len(clients),
		Clients:    c.clients * c.depth,
		ValueBytes: c.value,
		Mix:        mixLabel,
		Ops:        len(lats),
		OpsPerSec:  float64(len(lats)) / elapsed.Seconds(),
		P50us:      quantileUS(lats, 0.50),
		P99us:      quantileUS(lats, 0.99),
		P999us:     quantileUS(lats, 0.999),
	}, nil
}

// measureConvert is the elasticity row: the closed-loop workload on
// the replicated memgest measured while background goroutines
// continuously bulk-convert the whole key space back and forth between
// the rep and srs memgests. The row keys the trajectory as
// "<rep-scheme>+bulkconv", so the gate compares conversion-under-load
// throughput run over run. Returns the row and the total keys the
// background churn converted.
func measureConvert(c config, clients []*client.Client) (benchjson.Cluster, uint64, error) {
	var (
		stop    atomic.Bool
		churned atomic.Uint64
		wg      sync.WaitGroup
	)
	dsts := [2]proto.MemgestID{proto.MemgestID(c.srsMG), proto.MemgestID(c.repMG)}
	for _, cl := range clients {
		wg.Add(1)
		go func(cl *client.Client) {
			defer wg.Done()
			for i := 0; !stop.Load(); i++ {
				n, err := cl.ConvertPrefix("", 0, dsts[i%2])
				churned.Add(uint64(n))
				if err != nil {
					// The churn races the foreground puts (a key can change
					// memgest between the scan and its convert); transient
					// failures are part of the contention being measured,
					// not a failure of the run.
					time.Sleep(20 * time.Millisecond)
				}
			}
		}(cl)
	}
	row, err := measure(c, clients, proto.MemgestID(c.repMG), c.repScheme+"+bulkconv")
	stop.Store(true)
	wg.Wait()
	return row, churned.Load(), err
}

// preloadKeys writes every key the plan touches once, so gets during
// the measured window hit committed data.
func preloadKeys(c config, clients []*client.Client, mg proto.MemgestID, ops []op) error {
	seen := make(map[string][]byte, c.keys)
	for _, o := range ops {
		if _, ok := seen[o.key]; !ok {
			v := o.value
			if v == nil {
				v = make([]byte, c.value)
			}
			seen[o.key] = v
		}
	}
	pipes := make([]*client.Pipeline, len(clients))
	for g, cl := range clients {
		pipes[g] = cl.NewPipeline(16)
	}
	for k, v := range seen {
		pipes[core.GroupOf(k, len(clients))].PutIn(k, v, mg)
	}
	for _, p := range pipes {
		if err := p.Flush(); err != nil {
			return fmt.Errorf("preload: %w", err)
		}
	}
	return nil
}

// runClosed runs clients*depth synchronous streams until the duration
// (or op cap) is reached. Each stream walks its own slice of the plan
// so two streams never contend on a key ordering artifact.
func runClosed(c config, ops []op, doOp func(op) error) ([]time.Duration, time.Duration, int64) {
	workers := c.clients * c.depth
	if workers < 1 {
		workers = 1
	}
	var (
		next    atomic.Int64
		errs    atomic.Int64
		mu      sync.Mutex
		lats    []time.Duration
		wg      sync.WaitGroup
		stopped atomic.Bool
	)
	capN := int64(0)
	if c.ops > 0 {
		capN = int64(c.ops)
	}
	start := time.Now()
	time.AfterFunc(c.duration, func() { stopped.Store(true) })
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			local := make([]time.Duration, 0, 4096)
			for !stopped.Load() {
				i := next.Add(1) - 1
				if capN > 0 && i >= capN {
					break
				}
				o := ops[i%int64(len(ops))]
				t0 := time.Now()
				if err := doOp(o); err != nil {
					errs.Add(1)
					continue
				}
				local = append(local, time.Since(t0))
			}
			mu.Lock()
			lats = append(lats, local...)
			mu.Unlock()
		}()
	}
	wg.Wait()
	return lats, time.Since(start), errs.Load()
}

// runOpen offers the plan on its fixed schedule; latency runs from the
// scheduled arrival, so a saturated cluster shows its queueing delay
// instead of silently shedding load.
func runOpen(c config, ops []op, doOp func(op) error) ([]time.Duration, time.Duration, int64) {
	gap := time.Duration(float64(time.Second) / c.rate)
	var (
		errs atomic.Int64
		mu   sync.Mutex
		lats []time.Duration
		wg   sync.WaitGroup
	)
	// The in-flight bound only protects the generator machine; past it
	// the run is closed in disguise, so keep it far above any sane
	// operating point.
	sem := make(chan struct{}, 4096)
	start := time.Now()
	for i := range ops {
		at := time.Duration(i) * gap
		ops[i].at = at
		if d := at - time.Since(start); d > 0 {
			time.Sleep(d)
		}
		sem <- struct{}{}
		wg.Add(1)
		go func(o op) {
			defer wg.Done()
			err := doOp(o)
			lat := time.Since(start) - o.at
			<-sem
			if err != nil {
				errs.Add(1)
				return
			}
			mu.Lock()
			lats = append(lats, lat)
			mu.Unlock()
		}(ops[i])
	}
	wg.Wait()
	return lats, time.Since(start), errs.Load()
}

// quantileUS returns the exact q-quantile of sorted latencies in
// microseconds.
func quantileUS(sorted []time.Duration, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)))
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return float64(sorted[i]) / float64(time.Microsecond)
}

func parseMix(s string) (workload.Mix, error) {
	parts := strings.SplitN(s, ":", 2)
	if len(parts) != 2 {
		return workload.Mix{}, fmt.Errorf("bad mix %q (want GET:PUT)", s)
	}
	g, err1 := strconv.Atoi(parts[0])
	p, err2 := strconv.Atoi(parts[1])
	if err1 != nil || err2 != nil || g < 0 || p < 0 || g+p == 0 {
		return workload.Mix{}, fmt.Errorf("bad mix %q", s)
	}
	return workload.Mix{Get: g, Put: p}, nil
}

func namedTrace(name string) (traces.Stats, bool) {
	for _, tr := range []traces.Stats{
		traces.Financial1, traces.Financial2,
		traces.WebSearch1, traces.WebSearch2, traces.WebSearch3,
	} {
		if strings.EqualFold(tr.Name, name) {
			return tr, true
		}
	}
	return traces.Stats{}, false
}

// offsetPort returns addr with its port shifted by delta (group g of a
// node listens on the node's port + g; see cmd/ringd).
func offsetPort(addr string, delta int) (string, error) {
	host, port, err := net.SplitHostPort(addr)
	if err != nil {
		return "", fmt.Errorf("bad address %q: %v", addr, err)
	}
	p, err := strconv.Atoi(port)
	if err != nil {
		return "", fmt.Errorf("bad port in %q: %v", addr, err)
	}
	return net.JoinHostPort(host, strconv.Itoa(p+delta)), nil
}
