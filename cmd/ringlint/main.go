// Command ringlint runs Ring's project-specific static-analysis suite
// (see internal/lint) in two modes:
//
// Standalone, over package patterns resolved in the current module:
//
//	go build -o bin/ringlint ./cmd/ringlint
//	./bin/ringlint ./...
//
// As a go vet backend, speaking vet's unitchecker protocol:
//
//	go vet -vettool=$(pwd)/bin/ringlint ./...
//
// Exit status: 0 clean, 1 findings, 2 usage or load/type errors.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/token"
	"io"
	"os"
	"path/filepath"
	"strings"

	"ring/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	// `go vet -vettool` first interrogates the tool with -flags (a JSON
	// list of supported analyzer flags; ringlint exposes none) and
	// -V=full, then invokes it with a single *.cfg JSON argument per
	// package.
	if len(args) == 1 && args[0] == "-flags" {
		fmt.Println("[]")
		return 0
	}
	fs := flag.NewFlagSet("ringlint", flag.ContinueOnError)
	versionFlag := fs.String("V", "", "print version and exit (vet protocol)")
	listFlag := fs.Bool("list", false, "list analyzers and exit")
	jsonFlag := fs.Bool("json", false, "emit one JSON object per finding (standalone mode)")
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: ringlint [-json] [packages]  |  ringlint <file.cfg> (vet protocol)\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *versionFlag != "" {
		return printVersion(*versionFlag)
	}
	if *listFlag {
		for _, a := range lint.Analyzers() {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	rest := fs.Args()
	if len(rest) == 1 && strings.HasSuffix(rest[0], ".cfg") {
		return runVet(rest[0])
	}
	return runStandalone(rest, *jsonFlag)
}

// printVersion implements `ringlint -V=full`. vet requires the output
// shape "<name> version <version>"; the version must be stable for a
// given build, so it is derived from the executable's content hash.
func printVersion(mode string) int {
	if mode != "full" {
		fmt.Println("ringlint version devel")
		return 0
	}
	h := sha256.New()
	if exe, err := os.Executable(); err == nil {
		if f, err := os.Open(exe); err == nil {
			io.Copy(h, f)
			f.Close()
		}
	}
	fmt.Printf("ringlint version devel comments-go-here buildID=%02x\n", h.Sum(nil))
	return 0
}

// ------------------------------------------------------------- standalone

// jsonDiagnostic is the machine-readable finding shape emitted by
// `ringlint -json`: one JSON object per line (JSONL), consumed by the
// CI problem matcher and any tooling that wants findings without
// scraping the human rendering.
type jsonDiagnostic struct {
	Analyzer string `json:"analyzer"`
	Pos      string `json:"pos"` // file:line:col
	Message  string `json:"message"`
}

func runStandalone(patterns []string, asJSON bool) int {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := lint.Load(".", patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ringlint: %v\n", err)
		return 2
	}
	enc := json.NewEncoder(os.Stdout)
	status := 0
	for _, pkg := range pkgs {
		for _, terr := range pkg.TypeErrors {
			fmt.Fprintf(os.Stderr, "ringlint: %s: %v\n", pkg.PkgPath, terr)
			status = 2
		}
		if len(pkg.TypeErrors) > 0 {
			continue
		}
		diags, err := lint.RunAnalyzers(pkg, lint.Analyzers())
		if err != nil {
			fmt.Fprintf(os.Stderr, "ringlint: %v\n", err)
			return 2
		}
		for _, d := range diags {
			if asJSON {
				enc.Encode(jsonDiagnostic{
					Analyzer: d.Analyzer,
					Pos:      pkg.Fset.Position(d.Pos).String(),
					Message:  strings.TrimPrefix(d.Message, d.Analyzer+": "),
				})
			} else {
				fmt.Printf("%s: %s\n", pkg.Fset.Position(d.Pos), d.Message)
			}
			if status == 0 {
				status = 1
			}
		}
	}
	return status
}

// ------------------------------------------------------------ vet protocol

// vetConfig is the subset of the unitchecker .cfg file ringlint needs.
type vetConfig struct {
	ID                        string // package ID
	ImportPath                string
	GoFiles                   []string
	ImportMap                 map[string]string // import path -> canonical path
	PackageFile               map[string]string // canonical path -> export data file
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

func runVet(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ringlint: %v\n", err)
		return 2
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "ringlint: parsing %s: %v\n", cfgPath, err)
		return 2
	}
	// ringlint computes no cross-package facts, but vet expects the
	// output file regardless.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			fmt.Fprintf(os.Stderr, "ringlint: %v\n", err)
			return 2
		}
	}
	if cfg.VetxOnly {
		return 0
	}
	var goFiles []string
	for _, f := range cfg.GoFiles {
		// cgo-generated files live outside the package dir; ringlint
		// analyzes the checked-in sources only.
		if strings.HasSuffix(f, ".go") {
			goFiles = append(goFiles, f)
		}
	}
	pkg, err := lint.CheckFiles(cfg.ImportPath, goFiles, func(path string) (string, bool) {
		if c, ok := cfg.ImportMap[path]; ok {
			path = c
		}
		f, ok := cfg.PackageFile[path]
		return f, ok
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "ringlint: %s: %v\n", cfg.ImportPath, err)
		return 2
	}
	if len(pkg.TypeErrors) > 0 {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		for _, terr := range pkg.TypeErrors {
			fmt.Fprintf(os.Stderr, "ringlint: %s: %v\n", cfg.ImportPath, terr)
		}
		return 2
	}
	diags, err := lint.RunAnalyzers(pkg, lint.Analyzers())
	if err != nil {
		fmt.Fprintf(os.Stderr, "ringlint: %v\n", err)
		return 2
	}
	// vet diagnostics go to stderr as file:line:col: message; exit 1
	// tells the go command the package has findings.
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s\n", relPosition(pkg.Fset, d.Pos), d.Message)
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}

// relPosition renders pos with a working-directory-relative filename
// when that is shorter, matching go vet's own output style.
func relPosition(fset *token.FileSet, pos token.Pos) string {
	p := fset.Position(pos)
	if wd, err := os.Getwd(); err == nil {
		if r, err := filepath.Rel(wd, p.Filename); err == nil && !strings.HasPrefix(r, "..") {
			p.Filename = r
		}
	}
	return p.String()
}
