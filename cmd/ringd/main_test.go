package main

import (
	"testing"

	"ring/internal/proto"
)

func TestParseMemgests(t *testing.T) {
	got, err := parseMemgests("rep1, rep3 ,srs3.2, SRS2.1", 3)
	if err != nil {
		t.Fatal(err)
	}
	want := []proto.Scheme{proto.Rep(1, 3), proto.Rep(3, 3), proto.SRS(3, 2, 3), proto.SRS(2, 1, 3)}
	if len(got) != len(want) {
		t.Fatalf("%d schemes", len(got))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("scheme %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestParseMemgestsErrors(t *testing.T) {
	for _, bad := range []string{"", "repx", "srs3", "srs3.x", "paxos", "srsa.b"} {
		if _, err := parseMemgests(bad, 3); err == nil {
			t.Errorf("%q accepted", bad)
		}
	}
}
