// Command ringd runs the Ring server side over TCP: one node per
// process in the basic mode, with two extensions for real-hardware
// deployments.
//
// Every node of a deployment is started with the same -nodes list (the
// TCP addresses of all nodes, in node-ID order), the same role counts,
// and the same -memgests list, plus its own -id:
//
//	ringd -id 0 -nodes host0:7000,host1:7000,host2:7000,host3:7000,host4:7000 \
//	      -shards 3 -redundant 2 -memgests rep1,rep3,srs3.2
//
// Node IDs 0..shards-1 are coordinators, the next `redundant` are
// redundancy nodes, and the rest are spares. Memgest descriptors are
// comma-separated: repR (replication factor R) or srsK.M (SRS(K,M,s)).
//
// Memgest groups (-groups G): a Ring node is single-threaded, so one
// deployment uses at most one core per machine. With -groups G the
// process hosts G fully independent group instances of its node — one
// runner goroutine and one TCP fabric each, group g listening on the
// node's port plus g — saturating up to G cores. Clients partition
// keys between groups with core.GroupOf; cmd/ringload does this
// automatically.
//
// Durable storage (-data-dir DIR): by default nodes are volatile, the
// paper's model. With -data-dir each hosted group persists committed
// state under DIR/group-<g> through a WAL + Bitcask engine; -fsync
// picks the group-commit policy (always / interval / never) and
// -fsync-interval its period. A node restarted over an existing
// directory recovers from it and rejoins the cluster holding all
// entries up to its durable commit index, syncing only the delta. In
// launcher mode each child is started with -data-dir DIR/node-<i>.
//
// Procfile-style launcher (-launch N): instead of starting N processes
// by hand, one parent re-execs itself once per node on consecutive
// localhost ports, supervises the children, and tears the whole
// cluster down on Ctrl-C or when any child dies:
//
//	ringd -launch 5 -base-port 7400 -shards 3 -redundant 2 \
//	      -memgests rep3,srs3.2 -groups 2
//
// scripts/cluster.sh wraps this together with cmd/ringload into a
// one-command benchmark run.
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/exec"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"time"

	"ring/internal/core"
	"ring/internal/proto"
	"ring/internal/replog"
	"ring/internal/status"
	"ring/internal/transport"
	"ring/internal/wal"
)

func main() {
	id := flag.Uint("id", 0, "this node's ID (index into -nodes)")
	nodes := flag.String("nodes", "", "comma-separated TCP addresses of all nodes, in ID order")
	shards := flag.Int("shards", 3, "number of key shards (coordinator nodes)")
	redundant := flag.Int("redundant", 2, "number of redundancy nodes")
	memgests := flag.String("memgests", "rep1", "comma-separated schemes: repR or srsK.M")
	blockSize := flag.Int("block-size", 64<<10, "SRS logical block size in bytes")
	heartbeat := flag.Duration("heartbeat", 50*time.Millisecond, "leader heartbeat period")
	failAfter := flag.Duration("fail-after", 250*time.Millisecond, "failure detection threshold")
	groups := flag.Int("groups", 1, "independent memgest groups hosted by this process (group g listens on the node port + g)")
	dataDir := flag.String("data-dir", "", "durable storage directory (empty = volatile, the paper's model); a restart over an existing directory recovers from it")
	fsyncMode := flag.String("fsync", "always", "fsync policy for the durable store: always, interval, or never")
	fsyncEvery := flag.Duration("fsync-interval", 5*time.Millisecond, "group-commit period under -fsync interval")
	httpAddr := flag.String("http", "", "optional HTTP monitoring address serving /status, /metrics, /debug/ringvars and /debug/trace (e.g. :8080)")
	launch := flag.Int("launch", 0, "launcher mode: spawn a whole N-node cluster on localhost and supervise it")
	basePort := flag.Int("base-port", 7400, "launcher mode: first TCP port (node i uses base-port + i*groups)")
	httpBase := flag.Int("http-base", 0, "launcher mode: serve node i's monitoring on this port + i (0 disables)")
	flag.Parse()

	if *launch > 0 {
		os.Exit(runLauncher(*launch, *basePort, *httpBase, *groups, *dataDir))
	}

	addrs := splitAddrs(*nodes)
	if *nodes == "" || len(addrs) < *shards+*redundant {
		log.Fatalf("ringd: -nodes must list at least shards+redundant (%d) addresses", *shards+*redundant)
	}
	if int(*id) >= len(addrs) {
		log.Fatalf("ringd: -id %d out of range for %d nodes", *id, len(addrs))
	}
	if *groups < 1 {
		*groups = 1
	}
	schemes, err := parseMemgests(*memgests, *shards)
	if err != nil {
		log.Fatal(err)
	}

	spec := core.ClusterSpec{
		Shards:    *shards,
		Redundant: *redundant,
		Spares:    len(addrs) - *shards - *redundant,
		Memgests:  schemes,
		Opts: core.Options{
			BlockSize:      *blockSize,
			HeartbeatEvery: *heartbeat,
			FailAfter:      *failAfter,
		},
	}
	cfg, err := core.BootConfig(spec)
	if err != nil {
		log.Fatal(err)
	}

	var durOpts replog.DurableOptions
	if *dataDir != "" {
		policy, err := replog.ParseFsyncPolicy(*fsyncMode)
		if err != nil {
			log.Fatalf("ringd: %v", err)
		}
		durOpts = replog.DurableOptions{Policy: policy, Interval: *fsyncEvery}
	}

	// One runner per hosted group, each group on its own fabric: group
	// g of node i lives at addrs[i] with the port shifted by g. Groups
	// never exchange messages, so the fabrics stay fully disjoint.
	runners := make([]*core.Runner, *groups)
	for g := 0; g < *groups; g++ {
		fabric := transport.NewTCPFabric()
		for i, a := range addrs {
			ga, err := offsetPort(a, g)
			if err != nil {
				log.Fatalf("ringd: node %d: %v", i, err)
			}
			fabric.Map(core.NodeAddr(proto.NodeID(i)), ga)
		}
		node, err := bootNode(proto.NodeID(*id), cfg, spec.Opts, *dataDir, g, durOpts)
		if err != nil {
			log.Fatalf("ringd: group %d: %v", g, err)
		}
		r, err := core.StartRunner(node, fabric, 0)
		if err != nil {
			log.Fatalf("ringd: group %d: %v", g, err)
		}
		defer r.Stop()
		runners[g] = r
		core.RegisterGroupQueueGauge(g, []*core.Runner{r})
	}
	log.Printf("ringd: node %d listening on %s (%d groups, %d shards, %d redundant, %d spares, %d memgests)",
		*id, addrs[*id], *groups, *shards, *redundant, spec.Spares, len(schemes))
	if *httpAddr != "" {
		// The monitor serves group 0's node plus the process registry,
		// which carries the runner and queue-depth gauges of all groups.
		mon, err := status.Serve(runners[0], *httpAddr)
		if err != nil {
			log.Fatalf("ringd: %v", err)
		}
		defer mon.Close()
		log.Printf("ringd: monitoring on http://%s/status", mon.Addr())
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	// Stop closes each group's durable store cleanly (flush + fsync),
	// so a SIGTERM'd node restarts with zero delta to resync.
	for _, r := range runners {
		r.Stop()
	}
	log.Printf("ringd: node %d stopped", *id)
}

// bootNode constructs one group's state machine. Without -data-dir it
// is a plain volatile node. With -data-dir, group g persists under
// <data-dir>/group-<g>: a first boot (empty directory) starts a normal
// node with durability attached, while a restart over existing state
// recovers it and boots quarantined — the node rejoins the running
// cluster advertising its durable state and delta-syncs the rest.
func bootNode(id proto.NodeID, cfg *proto.Config, opts core.Options, dataDir string, group int, durOpts replog.DurableOptions) (*core.Node, error) {
	if dataDir == "" {
		return core.New(id, cfg.Clone(), opts), nil
	}
	dir := filepath.Join(dataDir, fmt.Sprintf("group-%d", group))
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	d, err := replog.OpenDurable(wal.DirFS(dir), durOpts)
	if err != nil {
		return nil, fmt.Errorf("opening durable store in %s: %v", dir, err)
	}
	if len(d.Recovered()) > 0 {
		log.Printf("ringd: node %d group %d recovering from %s", id, group, dir)
		return core.NewRecovered(id, cfg.Clone(), opts, d), nil
	}
	n := core.New(id, cfg.Clone(), opts)
	n.SetDurable(d)
	return n, nil
}

// runLauncher spawns one child ringd per node on consecutive localhost
// ports, forwarding the shared cluster flags, and supervises them: the
// cluster dies as a unit on Ctrl-C/SIGTERM or when any child exits.
func runLauncher(n, basePort, httpBase, groups int, dataDir string) int {
	if groups < 1 {
		groups = 1
	}
	self, err := os.Executable()
	if err != nil {
		log.Fatalf("ringd: cannot find own binary: %v", err)
	}
	addrs := make([]string, n)
	for i := range addrs {
		// Each node owns `groups` consecutive ports (one per group
		// fabric), so nodes are spaced by the group count.
		addrs[i] = fmt.Sprintf("127.0.0.1:%d", basePort+i*groups)
	}
	nodeList := strings.Join(addrs, ",")

	// Child flags = the shared cluster flags as given, minus the
	// launcher-only ones, plus the per-node -id/-nodes.
	shared := []string{"-nodes", nodeList, "-groups", strconv.Itoa(groups)}
	flag.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "launch", "base-port", "http-base", "id", "nodes", "groups", "http", "data-dir":
			return
		}
		shared = append(shared, "-"+f.Name, f.Value.String())
	})

	procs := make([]*exec.Cmd, n)
	exited := make(chan int, n)
	for i := 0; i < n; i++ {
		args := append([]string{"-id", strconv.Itoa(i)}, shared...)
		if dataDir != "" {
			// Each child owns its node's subdirectory, like each real
			// machine owns its disk.
			args = append(args, "-data-dir", filepath.Join(dataDir, fmt.Sprintf("node-%d", i)))
		}
		if httpBase > 0 {
			args = append(args, "-http", fmt.Sprintf("127.0.0.1:%d", httpBase+i))
		}
		cmd := exec.Command(self, args...)
		cmd.Stdout = os.Stdout
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			log.Printf("ringd: launch node %d: %v", i, err)
			stopAll(procs)
			return 1
		}
		procs[i] = cmd
		go func(i int, cmd *exec.Cmd) {
			_ = cmd.Wait()
			exited <- i
		}(i, cmd)
	}
	log.Printf("ringd: launched %d nodes on %s (groups=%d); Ctrl-C to stop", n, nodeList, groups)
	fmt.Printf("RING_NODES=%s\n", nodeList)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	code := 0
	select {
	case <-sig:
	case i := <-exited:
		log.Printf("ringd: node %d exited; stopping cluster", i)
		code = 1
	}
	stopAll(procs)
	return code
}

// stopAll terminates every child and waits briefly for each.
func stopAll(procs []*exec.Cmd) {
	for _, cmd := range procs {
		if cmd != nil && cmd.Process != nil {
			_ = cmd.Process.Signal(syscall.SIGTERM)
		}
	}
	deadline := time.After(3 * time.Second)
	for _, cmd := range procs {
		if cmd == nil || cmd.Process == nil {
			continue
		}
		done := make(chan struct{})
		go func(cmd *exec.Cmd) { _ = cmd.Wait(); close(done) }(cmd)
		select {
		case <-done:
		case <-deadline:
			_ = cmd.Process.Kill()
		}
	}
}

// splitAddrs parses a -nodes list, trimming whitespace.
func splitAddrs(s string) []string {
	parts := strings.Split(s, ",")
	out := make([]string, 0, len(parts))
	for _, p := range parts {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// offsetPort returns addr with its port shifted by delta — how group
// fabrics share one -nodes list.
func offsetPort(addr string, delta int) (string, error) {
	host, port, err := net.SplitHostPort(addr)
	if err != nil {
		return "", fmt.Errorf("bad address %q: %v", addr, err)
	}
	p, err := strconv.Atoi(port)
	if err != nil {
		return "", fmt.Errorf("bad port in %q: %v", addr, err)
	}
	return net.JoinHostPort(host, strconv.Itoa(p+delta)), nil
}

// parseMemgests parses "rep1,rep3,srs3.2" into scheme descriptors.
func parseMemgests(s string, shards int) ([]proto.Scheme, error) {
	var out []proto.Scheme
	for _, tok := range strings.Split(s, ",") {
		tok = strings.TrimSpace(strings.ToLower(tok))
		switch {
		case strings.HasPrefix(tok, "rep"):
			r, err := strconv.Atoi(tok[3:])
			if err != nil {
				return nil, fmt.Errorf("ringd: bad memgest %q", tok)
			}
			out = append(out, proto.Rep(r, shards))
		case strings.HasPrefix(tok, "srs"):
			parts := strings.SplitN(tok[3:], ".", 2)
			if len(parts) != 2 {
				return nil, fmt.Errorf("ringd: bad memgest %q (want srsK.M)", tok)
			}
			k, err1 := strconv.Atoi(parts[0])
			m, err2 := strconv.Atoi(parts[1])
			if err1 != nil || err2 != nil {
				return nil, fmt.Errorf("ringd: bad memgest %q", tok)
			}
			out = append(out, proto.SRS(k, m, shards))
		default:
			return nil, fmt.Errorf("ringd: unknown memgest %q", tok)
		}
	}
	return out, nil
}
