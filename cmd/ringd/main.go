// Command ringd runs one Ring server node over TCP.
//
// Every node of a deployment is started with the same -nodes list (the
// TCP addresses of all nodes, in node-ID order), the same role counts,
// and the same -memgests list, plus its own -id:
//
//	ringd -id 0 -nodes host0:7000,host1:7000,host2:7000,host3:7000,host4:7000 \
//	      -shards 3 -redundant 2 -memgests rep1,rep3,srs3.2
//
// Node IDs 0..shards-1 are coordinators, the next `redundant` are
// redundancy nodes, and the rest are spares. Memgest descriptors are
// comma-separated: repR (replication factor R) or srsK.M (SRS(K,M,s)).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"ring/internal/core"
	"ring/internal/proto"
	"ring/internal/status"
	"ring/internal/transport"
)

func main() {
	id := flag.Uint("id", 0, "this node's ID (index into -nodes)")
	nodes := flag.String("nodes", "", "comma-separated TCP addresses of all nodes, in ID order")
	shards := flag.Int("shards", 3, "number of key shards (coordinator nodes)")
	redundant := flag.Int("redundant", 2, "number of redundancy nodes")
	memgests := flag.String("memgests", "rep1", "comma-separated schemes: repR or srsK.M")
	blockSize := flag.Int("block-size", 64<<10, "SRS logical block size in bytes")
	heartbeat := flag.Duration("heartbeat", 50*time.Millisecond, "leader heartbeat period")
	failAfter := flag.Duration("fail-after", 250*time.Millisecond, "failure detection threshold")
	httpAddr := flag.String("http", "", "optional HTTP monitoring address serving /status, /metrics, /debug/ringvars and /debug/trace (e.g. :8080)")
	flag.Parse()

	addrs := strings.Split(*nodes, ",")
	if *nodes == "" || len(addrs) < *shards+*redundant {
		log.Fatalf("ringd: -nodes must list at least shards+redundant (%d) addresses", *shards+*redundant)
	}
	if int(*id) >= len(addrs) {
		log.Fatalf("ringd: -id %d out of range for %d nodes", *id, len(addrs))
	}
	schemes, err := parseMemgests(*memgests, *shards)
	if err != nil {
		log.Fatal(err)
	}

	spec := core.ClusterSpec{
		Shards:    *shards,
		Redundant: *redundant,
		Spares:    len(addrs) - *shards - *redundant,
		Memgests:  schemes,
		Opts: core.Options{
			BlockSize:      *blockSize,
			HeartbeatEvery: *heartbeat,
			FailAfter:      *failAfter,
		},
	}
	cfg, err := core.BootConfig(spec)
	if err != nil {
		log.Fatal(err)
	}

	fabric := transport.NewTCPFabric()
	for i, a := range addrs {
		fabric.Map(core.NodeAddr(proto.NodeID(i)), strings.TrimSpace(a))
	}
	node := core.New(proto.NodeID(*id), cfg, spec.Opts)
	runner, err := core.StartRunner(node, fabric, 0)
	if err != nil {
		log.Fatalf("ringd: %v", err)
	}
	log.Printf("ringd: node %d listening on %s (%d shards, %d redundant, %d spares, %d memgests)",
		*id, addrs[*id], *shards, *redundant, spec.Spares, len(schemes))
	if *httpAddr != "" {
		mon, err := status.Serve(runner, *httpAddr)
		if err != nil {
			log.Fatalf("ringd: %v", err)
		}
		defer mon.Close()
		log.Printf("ringd: monitoring on http://%s/status", mon.Addr())
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	runner.Stop()
	log.Printf("ringd: node %d stopped", *id)
}

// parseMemgests parses "rep1,rep3,srs3.2" into scheme descriptors.
func parseMemgests(s string, shards int) ([]proto.Scheme, error) {
	var out []proto.Scheme
	for _, tok := range strings.Split(s, ",") {
		tok = strings.TrimSpace(strings.ToLower(tok))
		switch {
		case strings.HasPrefix(tok, "rep"):
			r, err := strconv.Atoi(tok[3:])
			if err != nil {
				return nil, fmt.Errorf("ringd: bad memgest %q", tok)
			}
			out = append(out, proto.Rep(r, shards))
		case strings.HasPrefix(tok, "srs"):
			parts := strings.SplitN(tok[3:], ".", 2)
			if len(parts) != 2 {
				return nil, fmt.Errorf("ringd: bad memgest %q (want srsK.M)", tok)
			}
			k, err1 := strconv.Atoi(parts[0])
			m, err2 := strconv.Atoi(parts[1])
			if err1 != nil || err2 != nil {
				return nil, fmt.Errorf("ringd: bad memgest %q", tok)
			}
			out = append(out, proto.SRS(k, m, shards))
		default:
			return nil, fmt.Errorf("ringd: unknown memgest %q", tok)
		}
	}
	return out, nil
}
