package main

import (
	"bytes"
	"strings"
	"testing"

	"ring/internal/core"
	"ring/internal/proto"
	"ring/internal/status"
)

func TestRunStats(t *testing.T) {
	cl, err := core.StartCluster(core.ClusterSpec{
		Shards: 1, Memgests: []proto.Scheme{proto.Rep(1, 1)},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Stop()
	srv, err := status.Serve(cl.Runs[0], "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	var buf bytes.Buffer
	if err := runStats(&buf, " "+srv.Addr()+" ,", nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "nodes=1") {
		t.Fatalf("stats output:\n%s", buf.String())
	}

	buf.Reset()
	if err := runStats(&buf, srv.Addr(), []string{"-watch", "-interval", "1ms", "-rounds", "2"}); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(buf.String(), "--- "); got != 2 {
		t.Fatalf("watch rendered %d rounds, want 2:\n%s", got, buf.String())
	}

	if err := runStats(&buf, " , ", nil); err == nil {
		t.Fatal("empty address list accepted")
	}
	if err := runStats(&buf, srv.Addr(), []string{"-bogusflag"}); err == nil {
		t.Fatal("unknown flag accepted")
	}
}
