package main

import (
	"testing"

	"ring/internal/proto"
)

func TestParseScheme(t *testing.T) {
	sc, err := parseScheme("rep3")
	if err != nil || sc.Kind != proto.SchemeRep || sc.R != 3 {
		t.Fatalf("rep3: %v %v", sc, err)
	}
	sc, err = parseScheme(" SRS3.2 ")
	if err != nil || sc.Kind != proto.SchemeSRS || sc.K != 3 || sc.M != 2 {
		t.Fatalf("srs3.2: %v %v", sc, err)
	}
	for _, bad := range []string{"", "rep", "repq", "srs", "srs3", "srs3.", "srs.2", "raid5"} {
		if _, err := parseScheme(bad); err == nil {
			t.Errorf("%q accepted", bad)
		}
	}
}
