// Command ringctl is the command-line client for a Ring deployment
// started with ringd.
//
//	ringctl -nodes host0:7000,host1:7000 put mykey "some value"
//	ringctl -nodes host0:7000 put-in 3 mykey "erasure coded value"
//	ringctl -nodes host0:7000 get mykey
//	ringctl -nodes host0:7000 move mykey 2
//	ringctl -nodes host0:7000 delete mykey
//	ringctl -nodes host0:7000 convert mykey srs3.2
//	ringctl -nodes host0:7000 convert-prefix user/ 4
//	ringctl -nodes host0:7000 join 7
//	ringctl -nodes host0:7000 leave 3
//	ringctl -nodes host0:7000 mkmemgest srs3.2
//	ringctl -nodes host0:7000 rmmemgest 4
//	ringctl -nodes host0:7000 set-default 2
//	ringctl -nodes host0:7000 describe 2
//	ringctl -nodes host0:7000 config
//	ringctl -http host0:8080,host1:8080 stats
//	ringctl -http host0:8080,host1:8080 stats -watch -interval 1s
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strconv"
	"strings"
	"time"

	"ring/internal/client"
	"ring/internal/core"
	"ring/internal/proto"
	"ring/internal/status"
	"ring/internal/transport"
)

func usage() {
	fmt.Fprintln(os.Stderr, "usage: ringctl -nodes addr[,addr...] <command> [args]")
	fmt.Fprintln(os.Stderr, "commands: put, put-in, get, delete, move, convert, convert-prefix, join, leave, mkmemgest, rmmemgest, set-default, describe, config, stats")
	fmt.Fprintln(os.Stderr, "convert/convert-prefix take a destination memgest ID or scheme token (rep3, srs3.2)")
	fmt.Fprintln(os.Stderr, "stats scrapes the -http addresses (ringd -http endpoints), not -nodes")
	os.Exit(2)
}

func main() {
	nodes := flag.String("nodes", "127.0.0.1:7000", "comma-separated node addresses, in ID order")
	httpAddrs := flag.String("http", "127.0.0.1:8080", "comma-separated node HTTP status addresses (for stats)")
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		usage()
	}

	// stats only talks to the HTTP status endpoints — dispatch it
	// before dialing the cluster fabric.
	if args[0] == "stats" {
		if err := runStats(os.Stdout, *httpAddrs, args[1:]); err != nil {
			log.Fatalf("ringctl: %v", err)
		}
		return
	}

	fabric := transport.NewTCPFabric()
	var bootstrap []string
	for i, a := range strings.Split(*nodes, ",") {
		logical := core.NodeAddr(proto.NodeID(i))
		fabric.Map(logical, strings.TrimSpace(a))
		bootstrap = append(bootstrap, logical)
	}
	// The client's own endpoint listens on an ephemeral port; servers
	// reply over the inbound connection, so no reverse mapping exists.
	fabric.Map("client/1", "127.0.0.1:0")

	c, err := client.Dial(fabric, bootstrap, client.Options{})
	if err != nil {
		log.Fatalf("ringctl: %v", err)
	}
	defer c.Close()

	die := func(err error) {
		if err != nil {
			log.Fatalf("ringctl: %v", err)
		}
	}
	need := func(n int) {
		if len(args) != n+1 {
			usage()
		}
	}
	parseMg := func(s string) proto.MemgestID {
		v, err := strconv.ParseUint(s, 10, 32)
		die(err)
		return proto.MemgestID(v)
	}
	// resolveMg accepts a numeric memgest ID or a scheme token (rep3,
	// srs3.2) resolved against the live configuration — so `convert`
	// can be phrased by scheme, matching how operators think.
	resolveMg := func(s string) proto.MemgestID {
		if v, err := strconv.ParseUint(s, 10, 32); err == nil {
			return proto.MemgestID(v)
		}
		sc, err := parseScheme(s)
		die(err)
		cfg := c.Config()
		sc.S = cfg.Shards()
		for _, m := range cfg.Memgests {
			if m.Scheme == sc {
				return m.ID
			}
		}
		die(fmt.Errorf("no memgest with scheme %v (create one with mkmemgest)", sc))
		return 0
	}

	switch args[0] {
	case "put":
		need(2)
		ver, err := c.Put(args[1], []byte(args[2]))
		die(err)
		fmt.Printf("OK version=%d\n", ver)
	case "put-in":
		need(3)
		ver, err := c.PutIn(args[2], []byte(args[3]), parseMg(args[1]))
		die(err)
		fmt.Printf("OK version=%d\n", ver)
	case "get":
		need(1)
		val, ver, err := c.Get(args[1])
		die(err)
		fmt.Printf("version=%d value=%q\n", ver, val)
	case "delete":
		need(1)
		die(c.Delete(args[1]))
		fmt.Println("OK")
	case "move":
		need(2)
		ver, err := c.Move(args[1], parseMg(args[2]))
		die(err)
		fmt.Printf("OK version=%d\n", ver)
	case "convert":
		// convert <key> <to> [<from>]: re-encode one key's scheme.
		if len(args) != 3 && len(args) != 4 {
			usage()
		}
		var from proto.MemgestID
		if len(args) == 4 {
			from = resolveMg(args[3])
		}
		ver, err := c.Convert(args[1], from, resolveMg(args[2]))
		die(err)
		fmt.Printf("OK version=%d\n", ver)
	case "convert-prefix":
		// convert-prefix <prefix> <to> [<from>]: bulk conversion across
		// every coordinator.
		if len(args) != 3 && len(args) != 4 {
			usage()
		}
		var from proto.MemgestID
		if len(args) == 4 {
			from = resolveMg(args[3])
		}
		count, err := c.ConvertPrefix(args[1], from, resolveMg(args[2]))
		die(err)
		fmt.Printf("OK converted=%d\n", count)
	case "join":
		need(1)
		id, err := strconv.ParseUint(args[1], 10, 32)
		die(err)
		epoch, err := c.ResizeJoin(proto.NodeID(id))
		die(err)
		fmt.Printf("OK epoch=%d\n", epoch)
	case "leave":
		need(1)
		id, err := strconv.ParseUint(args[1], 10, 32)
		die(err)
		moved, epoch, err := c.ResizeLeave(proto.NodeID(id))
		die(err)
		fmt.Printf("OK moved=%d epoch=%d\n", moved, epoch)
	case "mkmemgest":
		need(1)
		sc, err := parseScheme(args[1])
		die(err)
		sc.S = c.Config().Shards() // every memgest shares the group's s
		id, err := c.CreateMemgest(sc)
		die(err)
		fmt.Printf("OK memgest=%d (%v)\n", id, sc)
	case "rmmemgest":
		need(1)
		die(c.DeleteMemgest(parseMg(args[1])))
		fmt.Println("OK")
	case "set-default":
		need(1)
		die(c.SetDefaultMemgest(parseMg(args[1])))
		fmt.Println("OK")
	case "describe":
		need(1)
		sc, err := c.GetMemgestDescriptor(parseMg(args[1]))
		die(err)
		fmt.Printf("%v (tolerates %d failures, %.2fx storage)\n", sc, sc.Tolerates(), sc.StorageOverhead())
	case "config":
		cfg := c.Config()
		fmt.Printf("epoch=%d leader=node/%d default=%d\n", cfg.Epoch, cfg.Leader, cfg.Default)
		fmt.Printf("coordinators=%v redundant=%v spares=%v\n", cfg.Coords, cfg.Redundant, cfg.Spares)
		for _, m := range cfg.Memgests {
			fmt.Printf("  memgest %d: %v redundant=%v\n", m.ID, m.Scheme, m.Redundant)
		}
	default:
		usage()
	}
}

// runStats implements the stats subcommand: scrape /debug/ringvars
// from every HTTP address, aggregate, and render — once, or on a loop
// with -watch. Factored from main so tests can drive it.
func runStats(w io.Writer, httpAddrs string, args []string) error {
	fs := flag.NewFlagSet("stats", flag.ContinueOnError)
	watch := fs.Bool("watch", false, "refresh continuously")
	interval := fs.Duration("interval", 2*time.Second, "refresh interval with -watch")
	rounds := fs.Int("rounds", 0, "with -watch, stop after this many refreshes (0 = forever)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var addrs []string
	for _, a := range strings.Split(httpAddrs, ",") {
		if a = strings.TrimSpace(a); a != "" {
			addrs = append(addrs, a)
		}
	}
	if len(addrs) == 0 {
		return fmt.Errorf("stats: no HTTP addresses (use -http)")
	}
	if *watch {
		return status.WatchStats(w, addrs, *interval, *rounds)
	}
	cs, errs := status.CollectStats(addrs)
	for _, e := range errs {
		fmt.Fprintf(os.Stderr, "ringctl: scrape error: %v\n", e)
	}
	if cs.Nodes == 0 {
		return fmt.Errorf("stats: no nodes answered")
	}
	status.RenderStats(w, cs)
	return nil
}

// parseScheme parses repR or srsK.M. The shard count s is implicit:
// the caller patches it from the cluster configuration, since every
// memgest in a group must share it.
func parseScheme(tok string) (proto.Scheme, error) {
	tok = strings.ToLower(strings.TrimSpace(tok))
	switch {
	case strings.HasPrefix(tok, "rep"):
		r, err := strconv.Atoi(tok[3:])
		if err != nil {
			return proto.Scheme{}, fmt.Errorf("bad scheme %q", tok)
		}
		return proto.Rep(r, 0), nil // s patched below by caller config
	case strings.HasPrefix(tok, "srs"):
		parts := strings.SplitN(tok[3:], ".", 2)
		if len(parts) != 2 {
			return proto.Scheme{}, fmt.Errorf("bad scheme %q (want srsK.M)", tok)
		}
		k, err1 := strconv.Atoi(parts[0])
		m, err2 := strconv.Atoi(parts[1])
		if err1 != nil || err2 != nil {
			return proto.Scheme{}, fmt.Errorf("bad scheme %q", tok)
		}
		return proto.SRS(k, m, 0), nil
	}
	return proto.Scheme{}, fmt.Errorf("unknown scheme %q", tok)
}
